"""Segmented top-k list operations (Section 7.2).

Lists are sorted by schema preorder; the entries sharing one preorder
number form a *segment*, ordered by (embedding cost, skeleton signature).
Each segment keeps at most *k* distinct skeletons **per validity class**:
skeletons that contain a real query-leaf match ("valid") and skeletons
whose leaves were all deleted ("invalid") are truncated separately.
Invalid partial skeletons must be carried — an ``intersect`` with a valid
sibling turns them into valid ones — but they may never crowd a valid
skeleton out of its segment, or the best-n guarantee would silently break.

With per-class quotas the standard top-k DP argument goes through: the
j-th cheapest valid output of any operation only combines inputs ranked
at most k within their own validity class, so every globally top-k valid
second-level query survives to the root.

Determinism: every truncation uses the same total order (cost, then
skeleton signature), so the list computed for *k* is a prefix of the list
computed for *k' > k* segment by segment — the property the incremental
algorithm of Section 7.4 relies on.  A :class:`TruncationMonitor` records
whether anything was discarded, which lets the driver detect exhaustion.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right
from collections.abc import Iterator

from ..engine.entries import INFINITE
from ..xmltree.model import NodeType
from .entries import SchemaEntry, entry_from_schema_posting
from .indexes import SchemaNodeIndexes

TopKList = list[SchemaEntry]


class TruncationMonitor:
    """Records whether any top-k operation actually discarded candidates.

    The incremental driver uses this to decide when a run with a given
    *k* was exhaustive: if nothing was truncated anywhere, the returned
    second-level queries are *all* second-level queries, and full
    retrieval (n = "all results") can stop growing k.  Flagging is
    conservative (an operation may flag without real loss), which only
    delays exhaustion detection, never breaks it.
    """

    __slots__ = ("truncated",)

    def __init__(self) -> None:
        self.truncated = False

    def flag(self) -> None:
        """Record that at least one candidate was discarded."""
        self.truncated = True


def fetch_k(
    indexes: SchemaNodeIndexes, label: str, node_type: NodeType, as_leaf_match: bool
) -> TopKList:
    """Initialize a list from a schema-index posting; entries carry the
    fetched label (so renamed matches build the right ``I_sec`` keys).

    The built list is served through the indexes' derived-value cache
    (:meth:`SchemaNodeIndexes.fetch_derived`), so repeat queries — and
    the incremental driver's growing-k rounds — skip the posting-to-entry
    construction; the returned list is a shared object and must not be
    mutated."""
    is_text = node_type == NodeType.TEXT
    return indexes.fetch_derived(
        label,
        node_type,
        as_leaf_match,
        lambda posting: [
            entry_from_schema_posting(item, label, is_text, as_leaf_match)
            for item in posting
        ],
    )


def merge_k(
    left: TopKList,
    right: TopKList,
    rename_cost: float,
    k: int,
    monitor: "TruncationMonitor | None" = None,
) -> TopKList:
    """Merge two lists (distinct labels); right entries pay the renaming
    cost.  Text classes can host both labels, so segments may interleave
    and must be re-truncated."""
    entries = list(left)
    for entry in right:
        entries.append(entry.with_cost(entry.embcost + rename_cost))
    return _rebuild(entries, k, monitor)


def join_k(
    ancestors: TopKList,
    descendants: TopKList,
    edge_cost: float,
    k: int,
    monitor: "TruncationMonitor | None" = None,
) -> TopKList:
    """For each ancestor, keep the k cheapest descendant skeletons (per
    validity class); each yields one copy of the ancestor pointing at
    that descendant."""
    if not ancestors or not descendants:
        return []
    classes = _partition_by_class(descendants)
    result: TopKList = []
    for ancestor in ancestors:
        _extend_from_columns(result, ancestor, classes, edge_cost, k, monitor)
    return _rebuild(result, k, monitor)


def outerjoin_k(
    ancestors: TopKList,
    descendants: TopKList,
    edge_cost: float,
    delete_cost: float,
    k: int,
    monitor: "TruncationMonitor | None" = None,
) -> TopKList:
    """``join_k`` for query leaves: every ancestor additionally gets a
    deletion candidate (empty pointer set, no leaf match) when the leaf's
    delete cost is finite."""
    classes = _partition_by_class(descendants)
    result: TopKList = []
    for ancestor in ancestors:
        _extend_from_columns(result, ancestor, classes, edge_cost, k, monitor)
        if delete_cost != INFINITE:
            result.append(
                SchemaEntry(
                    ancestor.pre,
                    ancestor.bound,
                    ancestor.pathcost,
                    ancestor.inscost,
                    delete_cost + edge_cost,
                    ancestor.label,
                    (),
                    False,
                )
            )
    return _rebuild(result, k, monitor)


def intersect_k(
    left: TopKList,
    right: TopKList,
    edge_cost: float,
    k: int,
    monitor: "TruncationMonitor | None" = None,
) -> TopKList:
    """Conjunction: for segments representing the same schema node, the
    cheapest pair combinations (k per output validity class); pointer
    sets are united."""
    result: TopKList = []
    left_segments = dict(_segments(left))
    for pre, right_segment in _segments(right):
        left_segment = left_segments.get(pre)
        if left_segment is None:
            continue
        seen_valid: set = set()
        seen_invalid: set = set()
        pair_count = 0
        total_pairs = len(left_segment) * len(right_segment)
        for left_entry, right_entry, total in _pairs_by_cost(left_segment, right_segment):
            pair_count += 1
            is_valid = left_entry.has_leaf or right_entry.has_leaf
            entry = SchemaEntry(
                left_entry.pre,
                left_entry.bound,
                left_entry.pathcost,
                left_entry.inscost,
                total + edge_cost,
                left_entry.label,
                _union_pointers(left_entry.pointers, right_entry.pointers),
                is_valid,
            )
            # Quota counts *distinct* skeletons, exactly like _rebuild:
            # different pairs can union to the same skeleton signature,
            # and letting duplicates consume the quota evicts distinct
            # cheap skeletons — breaking the top-k survival invariant the
            # driver's best-n early return relies on.
            seen = seen_valid if is_valid else seen_invalid
            signature = entry.signature
            if signature in seen:
                # same skeleton at equal or higher cost: drop, no loss
                continue
            if len(seen) >= k:
                # a quota discard is a truncation even when the pair
                # enumeration later runs to exhaustion (the final
                # pair_count check below only covers the break path)
                if monitor is not None:
                    monitor.flag()
                continue
            seen.add(signature)
            result.append(entry)
            if len(seen_valid) >= k and len(seen_invalid) >= k:
                break
        if monitor is not None and pair_count < total_pairs:
            monitor.flag()
    return _rebuild(result, k, monitor)


def union_k(
    left: TopKList,
    right: TopKList,
    edge_cost: float,
    k: int,
    monitor: "TruncationMonitor | None" = None,
) -> TopKList:
    """Disjunction: merge matching segments, keep the best k skeletons
    per validity class."""
    entries = []
    for entry in left:
        entries.append(entry.with_cost(entry.embcost + edge_cost))
    for entry in right:
        entries.append(entry.with_cost(entry.embcost + edge_cost))
    return _rebuild(entries, k, monitor)


def add_edge_k(entries: TopKList, edge_cost: float) -> TopKList:
    """Copies with the edge cost added (memoization support)."""
    if edge_cost == 0:
        return entries
    return [entry.with_cost(entry.embcost + edge_cost) for entry in entries]


def sort_roots(k: "int | None", entries: TopKList) -> TopKList:
    """The top-level ``sort``: globally order valid second-level queries
    by (cost, schema node, skeleton) and keep the best k."""
    valid = [entry for entry in entries if entry.has_leaf]
    valid.sort(key=lambda entry: (entry.embcost, entry.pre, entry.signature))
    if k is None:
        return valid
    return valid[:k]


# ----------------------------------------------------------------------
# internals
# ----------------------------------------------------------------------


class _ClassColumns:
    """One validity class of a descendant list as parallel columns.

    Built once per ``join_k``/``outerjoin_k`` call (the columnar analogue
    of the engine kernel's :class:`~repro.engine.columns.EvalColumns`):
    per-class ``pres`` make the ancestor-interval bisect land directly on
    class members, ``scores`` precompute ``pathcost + embcost`` (the
    ancestor-independent part of the candidate cost), and ``sort_keys``
    cache the deterministic tie-break — so the per-ancestor inner loop
    selects candidates without touching a single entry attribute."""

    __slots__ = ("has_leaf", "pres", "scores", "sort_keys", "entries")

    def __init__(self, has_leaf: bool) -> None:
        self.has_leaf = has_leaf
        self.pres: list[int] = []
        self.scores: list[float] = []
        self.sort_keys: list[tuple] = []
        self.entries: TopKList = []

    def append(self, entry: SchemaEntry) -> None:
        self.pres.append(entry.pre)
        self.scores.append(entry.pathcost + entry.embcost)
        self.sort_keys.append(entry.sort_key())
        self.entries.append(entry)


def _partition_by_class(descendants: TopKList) -> tuple[_ClassColumns, _ClassColumns]:
    """Split a descendant list into (valid, invalid) column sets; each
    stays sorted by ``pre`` (stable filter of a sorted list)."""
    valid = _ClassColumns(True)
    invalid = _ClassColumns(False)
    for entry in descendants:
        (valid if entry.has_leaf else invalid).append(entry)
    return valid, invalid


def _extend_from_columns(
    result: TopKList,
    ancestor: SchemaEntry,
    classes: tuple[_ClassColumns, _ClassColumns],
    edge_cost: float,
    k: int,
    monitor: "TruncationMonitor | None",
) -> None:
    """Append copies of ``ancestor`` for the k cheapest descendants of
    each validity class (the shared core of join_k/outerjoin_k)."""
    ancestor_pre = ancestor.pre
    ancestor_bound = ancestor.bound
    base = ancestor.pathcost + ancestor.inscost
    for columns in classes:
        pres = columns.pres
        low = bisect_right(pres, ancestor_pre)
        high = bisect_right(pres, ancestor_bound)
        if low >= high:
            continue
        if monitor is not None and high - low > k:
            monitor.flag()
        scores = columns.scores
        sort_keys = columns.sort_keys
        selected = heapq.nsmallest(
            k,
            range(low, high),
            key=lambda i: (scores[i] - base + edge_cost, sort_keys[i]),
        )
        entries = columns.entries
        has_leaf = columns.has_leaf
        for i in selected:
            result.append(
                SchemaEntry(
                    ancestor_pre,
                    ancestor_bound,
                    ancestor.pathcost,
                    ancestor.inscost,
                    scores[i] - base + edge_cost,
                    ancestor.label,
                    (entries[i],),
                    has_leaf,
                )
            )


def _segments(entries: TopKList) -> Iterator[tuple[int, list[SchemaEntry]]]:
    """Group a pre-sorted list into (pre, segment) groups."""
    start = 0
    total = len(entries)
    while start < total:
        end = start
        pre = entries[start].pre
        while end < total and entries[end].pre == pre:
            end += 1
        yield pre, entries[start:end]
        start = end


def _rebuild(
    entries: TopKList, k: int, monitor: "TruncationMonitor | None" = None
) -> TopKList:
    """Sort by (pre, cost, signature, validity), deduplicate identical
    skeletons per segment *per validity class*, and truncate every
    segment to k entries per validity class.

    Deduplication must not cross validity classes: a matched leaf and a
    fully-deleted inner node can produce skeletons with identical
    signatures, and a valid skeleton must never be shadowed by an
    equal-shape invalid one (or vice versa — the invalid variant can be
    cheaper and is still needed as an intersect partner)."""
    entries.sort(
        key=lambda entry: (entry.pre, entry.embcost, entry.signature, not entry.has_leaf)
    )
    result: TopKList = []
    current_pre = None
    seen_valid: set = set()
    seen_invalid: set = set()
    valid_kept = invalid_kept = 0
    for entry in entries:
        if entry.pre != current_pre:
            current_pre = entry.pre
            seen_valid = set()
            seen_invalid = set()
            valid_kept = invalid_kept = 0
        signature = entry.signature
        if entry.has_leaf:
            if signature in seen_valid:
                continue
            if valid_kept >= k:
                if monitor is not None:
                    monitor.flag()
                continue
            seen_valid.add(signature)
            valid_kept += 1
        else:
            if signature in seen_invalid:
                continue
            if invalid_kept >= k:
                if monitor is not None:
                    monitor.flag()
                continue
            seen_invalid.add(signature)
            invalid_kept += 1
        result.append(entry)
    return result


def _pairs_by_cost(
    left: list[SchemaEntry], right: list[SchemaEntry]
) -> Iterator[tuple[SchemaEntry, SchemaEntry, float]]:
    """All pairs from two cost-sorted segments in ascending order of
    summed cost — the classic sorted-matrix frontier walk, fully lazy."""
    if not left or not right:
        return
    heap: list[tuple[float, int, int]] = [(left[0].embcost + right[0].embcost, 0, 0)]
    visited = {(0, 0)}
    while heap:
        total, i, j = heapq.heappop(heap)
        yield left[i], right[j], total
        if i + 1 < len(left) and (i + 1, j) not in visited:
            visited.add((i + 1, j))
            heapq.heappush(heap, (left[i + 1].embcost + right[j].embcost, i + 1, j))
        if j + 1 < len(right) and (i, j + 1) not in visited:
            visited.add((i, j + 1))
            heapq.heappush(heap, (left[i].embcost + right[j + 1].embcost, i, j + 1))


def _union_pointers(
    left: tuple[SchemaEntry, ...], right: tuple[SchemaEntry, ...]
) -> tuple[SchemaEntry, ...]:
    """Union of two pointer sets, deduplicated by skeleton signature."""
    if not left:
        return right
    if not right:
        return left
    by_signature = {pointer.signature: pointer for pointer in left}
    for pointer in right:
        by_signature.setdefault(pointer.signature, pointer)
    return tuple(by_signature.values())
