"""The incremental schema-driven best-n evaluator (Section 7.4, Figure 6).

The driver asks the top-k primary for the best k second-level queries,
executes the not-yet-executed ones against ``I_sec`` in cost order, and
collects result roots.  If fewer than n results accumulate, k is
increased by δ and the loop repeats; executed skeletons are remembered by
signature, so growing k only executes the newly exposed suffix (the
paper's prefix-erasure, made robust against tie reordering).

Full retrieval (``n=None``) terminates when a round both truncated
nothing anywhere (see ``TruncationMonitor``) and returned fewer root
candidates than k — at that point the executed skeletons are provably the
whole closure's image in the schema.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..approxql.ast import NameSelector
from ..approxql.costs import CostModel
from ..approxql.expanded import ExpandedQuery, build_expanded
from ..approxql.parser import parse_query
from ..concurrent import QueryPool, make_query_pool, resolve_jobs, worker_context
from ..errors import EvaluationError
from ..querycache import DriverState
from ..telemetry import collector as _telemetry
from ..xmltree.model import DataTree
from .dataguide import Schema, build_schema
from .entries import SchemaEntry  # noqa: F401 - part of SchemaResult's type
from .indexes import MemorySecondaryIndex, SchemaNodeIndexes, SecondaryIndex
from .primary_k import PrimaryKEvaluator
from .secondary import SecondaryExecutor
from .topk_ops import sort_roots

#: safety valve: k never grows beyond this
DEFAULT_MAX_K = 1_000_000

#: fallback ``initial_k`` when neither the caller nor ``n`` supplies one
DEFAULT_INITIAL_K = 16


def effective_schedule(
    n: "int | None",
    initial_k: "int | None",
    delta: "int | None",
) -> "tuple[int, int]":
    """The ``(k, delta)`` the incremental driver actually starts with
    for this request — defaults resolved exactly as :meth:`SchemaEvaluator.
    iter_results` resolves them.  The emitted order of equal-cost results
    depends on the round boundaries this schedule induces, so the
    resolved pair is part of a best-n answer's identity (the result
    cache keys on it; see ``repro.querycache``)."""
    if initial_k is None:
        initial_k = n if n is not None else DEFAULT_INITIAL_K
    k = max(1, initial_k)
    if delta is None:
        delta = max(1, k)
    return k, delta


@dataclass(frozen=True)
class SchemaResult:
    """One root-cost pair produced by the schema-driven algorithm.

    ``skeleton`` is the second-level query that retrieved the root; it is
    excluded from equality (two runs may retrieve the same root through
    different equally-cheap skeletons) and feeds the explanation facility.
    """

    root: int
    cost: float
    skeleton: "SchemaEntry | None" = field(default=None, compare=False, repr=False)


@dataclass
class EvaluationStats:
    """Observability for experiments: what the incremental driver did.

    .. deprecated::
        Superseded by the engine-wide telemetry layer: pass
        ``collect="counters"`` to :meth:`repro.core.database.Database.query`
        and read the ``schema.*`` counters off the returned report.  Kept
        as a shim for callers that drive :class:`SchemaEvaluator` directly.
    """

    rounds: int = 0
    final_k: int = 0
    second_level_generated: int = 0
    second_level_executed: int = 0
    second_level_nonempty: int = 0
    secondary_fetches: int = 0
    secondary_semijoins: int = 0
    results_found: int = 0
    exhausted: bool = False
    executed_skeletons: list[str] = field(default_factory=list)


class SchemaEvaluator:
    """Evaluates approXQL queries through the schema (the paper's second
    algorithm).

    Parameters
    ----------
    tree:
        The data tree.
    schema:
        Prebuilt schema; derived from ``tree`` when omitted.
    schema_indexes / secondary_index:
        Prebuilt index structures; in-memory ones are derived on demand.
    """

    def __init__(
        self,
        tree: "DataTree | None",
        schema: "Schema | None" = None,
        schema_indexes: "SchemaNodeIndexes | None" = None,
        secondary_index: "SecondaryIndex | None" = None,
    ) -> None:
        self._tree = tree
        if schema is None and (schema_indexes is None or secondary_index is None):
            if tree is None:
                raise EvaluationError(
                    "SchemaEvaluator needs a tree or prebuilt schema indexes"
                )
            schema = build_schema(tree)
        self._schema = schema
        self._indexes = (
            schema_indexes if schema_indexes is not None else SchemaNodeIndexes(schema)
        )
        self._isec = (
            secondary_index if secondary_index is not None else MemorySecondaryIndex(schema)
        )

    @property
    def schema(self) -> "Schema | None":
        return self._schema

    def evaluate(
        self,
        query: "str | NameSelector",
        costs: "CostModel | None" = None,
        n: "int | None" = None,
        initial_k: "int | None" = None,
        delta: "int | None" = None,
        max_k: int = DEFAULT_MAX_K,
        growth: str = "geometric",
        max_cost: "float | None" = None,
        stats: "EvaluationStats | None" = None,
        jobs: "int | None" = None,
        executor: str = "thread",
        expanded: "ExpandedQuery | None" = None,
        resume: "DriverState | None" = None,
        state_sink=None,
    ) -> list[SchemaResult]:
        """Best-``n`` root-cost pairs via the incremental algorithm.

        ``n = None`` retrieves *all* approximate results.  ``initial_k``
        defaults to ``n`` (or 16); ``delta`` defaults to ``initial_k``.
        Pass an :class:`EvaluationStats` to observe the driver.
        ``jobs > 1`` executes each round's second-level queries on a
        worker pool — ``executor`` picks threads or processes (see
        :meth:`iter_results`).
        """
        results = list(
            self.iter_results(
                query,
                costs,
                n=n,
                initial_k=initial_k,
                delta=delta,
                max_k=max_k,
                growth=growth,
                max_cost=max_cost,
                stats=stats,
                jobs=jobs,
                executor=executor,
                expanded=expanded,
                resume=resume,
                state_sink=state_sink,
            )
        )
        if n is not None:
            results = results[:n]
        return results

    def iter_results(
        self,
        query: "str | NameSelector",
        costs: "CostModel | None" = None,
        n: "int | None" = None,
        initial_k: "int | None" = None,
        delta: "int | None" = None,
        max_k: int = DEFAULT_MAX_K,
        growth: str = "geometric",
        max_cost: "float | None" = None,
        stats: "EvaluationStats | None" = None,
        jobs: "int | None" = None,
        executor: str = "thread",
        expanded: "ExpandedQuery | None" = None,
        resume: "DriverState | None" = None,
        state_sink=None,
    ):
        """Generator form of :meth:`evaluate` — the paper's "results can
        be sent immediately to the user" advantage: second-level queries
        stream their results in increasing cost order.

        ``growth`` selects how k advances between rounds: ``"linear"`` is
        the paper's fixed ``k += delta``; the default ``"geometric"``
        doubles the step after every unproductive round, which bounds the
        number of (re-)runs of the top-k primary by O(log k_final) and
        matters when n is far beyond the initial guess (or infinite).

        ``jobs > 1`` executes each round's independent second-level
        queries on a worker pool and merges their result streams back in
        cost order, so the emitted sequence is **identical** to the
        serial one.  Work counters may differ: the parallel driver
        dispatches a round's whole batch up front, so skeletons the
        serial driver would have skipped (root class saturated mid-round,
        n reached early) can count as executed.

        ``executor="process"`` runs the round's queries on a
        :class:`~repro.concurrent.ProcessQueryPool`: the ``I_sec``
        postings are exported once into a read-only shared-memory
        segment (cached per store generation) and each worker evaluates
        zero-copy against it — only skeleton payloads and result roots
        cross the pipe.  Falls back to threads when process pools or the
        export are unavailable.

        ``expanded`` supplies a prebuilt closure (the compiled-query
        cache's Tier-1 artifact), skipping parse and expansion.
        ``resume`` seeds the driver from a captured
        :class:`~repro.querycache.DriverState` — the continuation only
        re-emits results not in the resumed ``found`` map, so it yields
        exactly the suffix a cold run at a larger ``n`` would append.
        ``state_sink`` is called with the final :class:`DriverState`
        when the generator finishes (in-flight skeletons are removed
        from ``executed`` first, so a resume re-runs any skeleton whose
        instances were only partially consumed).
        """
        if executor not in ("thread", "process"):
            raise EvaluationError(
                f"executor must be 'thread' or 'process', got {executor!r}"
            )
        # captured before the serial SecondaryExecutor below shadows the
        # parameter name
        process_requested = executor == "process"
        if isinstance(query, str) and expanded is None:
            query = parse_query(query)
        if costs is None:
            costs = CostModel()
        if self._schema is not None:
            fingerprint = costs.insert_fingerprint
            self._schema.encode_costs(costs.insert_cost, fingerprint=fingerprint)
        if expanded is None:
            expanded = build_expanded(query, costs)

        if growth not in ("linear", "geometric"):
            raise EvaluationError(f"unknown growth mode {growth!r}")
        k, delta = effective_schedule(n, initial_k, delta)
        if delta < 1:
            raise EvaluationError(f"delta must be positive, got {delta}")

        executor = SecondaryExecutor(self._isec)
        executed: set = set()
        found: dict[int, float] = {}
        emitted = 0
        if resume is not None:
            k = max(1, resume.k)
            delta = max(1, resume.delta)
            executed = set(resume.executed)
            found = dict(resume.found)
            emitted = len(found)
        # signatures added to ``executed`` whose instances are not yet
        # fully folded into ``found``; subtracted before a state capture
        pending: set = set()
        # True when the answer is provably complete (exhaustion, cost
        # cutoff, or root-class saturation) — False when the driver
        # merely stopped at ``n``
        drained = False

        # Parallel second-level execution: one pool plus one
        # SecondaryExecutor per worker for the whole evaluation, so each
        # worker's fetch memo persists across rounds like the serial
        # executor's does.  Created lazily — a query that never sees a
        # round with two fresh skeletons never starts a thread.
        jobs = resolve_jobs(jobs)
        pool = None
        workers: "list[SecondaryExecutor]" = []
        process_pool = False
        shared_segment = None
        shared_segment_private = False

        # Root-class saturation (an exact early-termination rule): every
        # result is an instance of a candidate root class (the root label
        # or one of its renamings).  Results stream in increasing cost
        # order, so once every such instance has been retrieved, all
        # remaining second-level queries can only re-deliver known roots
        # at equal or higher cost — the answer is complete.  This bounds
        # full retrieval on permissive cost models, whose skeleton
        # closures are combinatorial while their result sets are not.
        # The same argument applies per class: a skeleton whose root
        # class is already fully retrieved needs no execution.
        instances_per_class = self._root_instance_counts(expanded.root)
        total_possible = (
            sum(instances_per_class.values()) if instances_per_class is not None else None
        )
        found_per_class: dict[int, int] = {}
        if resume is not None:
            found_per_class = dict(resume.found_per_class)

        try:
            if resume is not None and resume.exhausted:
                drained = True
                return
            if n is not None and emitted >= n:
                return
            while True:
                evaluator = PrimaryKEvaluator(self._indexes, k)
                with _telemetry.timer("schema.topk"):
                    root_entries = evaluator.evaluate(expanded)
                    queries = sort_roots(k, root_entries)
                if stats is not None:
                    stats.rounds += 1
                    stats.final_k = k
                    stats.second_level_generated = len(queries)
                _telemetry.count("schema.rounds")
                _telemetry.gauge("schema.final_k", k)
                _telemetry.gauge("schema.skeletons_enumerated", len(queries))
                fresh = [entry for entry in queries if entry.signature not in executed]
                if jobs > 1 and len(fresh) > 1:
                    # -- parallel round ----------------------------------
                    # The queries in `fresh` are independent; only the
                    # driver state (executed/found/emitted) is shared, and
                    # it stays on this thread.  Dispatch the batch, then
                    # fold results back in the original cost order so the
                    # emitted sequence matches the serial path exactly.
                    cutoff = len(fresh)
                    if max_cost is not None:
                        for index, entry in enumerate(fresh):
                            if entry.embcost > max_cost:
                                # cost order: everything from here on
                                # exceeds the bound, now and in larger-k
                                # rounds that merely extend the prefix
                                cutoff = index
                                break
                    batch = []
                    for entry in fresh[:cutoff]:
                        executed.add(entry.signature)
                        if (
                            instances_per_class is not None
                            and found_per_class.get(entry.pre, 0)
                            >= instances_per_class.get(entry.pre, 0)
                        ):
                            # saturated at round start (the parallel form
                            # of the serial mid-round check: conservative,
                            # never changes results — see the docstring)
                            _telemetry.count("schema.saturation_skips")
                            continue
                        batch.append(entry)
                    pending.update(entry.signature for entry in batch)
                    if pool is None:
                        if process_requested:
                            setup, shared_segment, shared_segment_private = (
                                self._shared_secondary_setup()
                            )
                            if setup is not None:
                                pool = make_query_pool(jobs, "process", setup)
                                process_pool = not isinstance(pool, QueryPool)
                                if not process_pool and shared_segment_private:
                                    # thread fallback: the private export
                                    # will never be attached
                                    shared_segment.destroy()
                                    shared_segment = None
                        if pool is None:
                            pool = QueryPool(jobs)
                        if not process_pool:
                            workers = [SecondaryExecutor(self._isec) for _ in range(jobs)]
                    if process_pool:
                        # workers run their own SecondaryExecutor over the
                        # shared segment (set up once per worker process);
                        # only the skeleton entries cross the pipe
                        chunks = [batch[i::jobs] for i in range(jobs)]
                        with _telemetry.timer("schema.secondary"):
                            chunk_results = pool.map_ordered(_execute_chunk_shared, chunks)
                        stride = jobs
                    else:
                        chunks = [
                            (workers[i], batch[i :: len(workers)])
                            for i in range(len(workers))
                        ]
                        with _telemetry.timer("schema.secondary"):
                            chunk_results = pool.map_ordered(_execute_chunk, chunks)
                        stride = len(workers)
                    instances_by_index: "dict[int, list]" = {}
                    for i, chunk in enumerate(chunk_results):
                        for j, instances in enumerate(chunk):
                            instances_by_index[i + j * stride] = instances
                    for index, entry in enumerate(batch):
                        instances = instances_by_index[index]
                        if stats is not None:
                            stats.second_level_executed += 1
                            stats.executed_skeletons.append(entry.format_skeleton())
                        _telemetry.count("schema.second_level_executed")
                        if stats is not None:
                            stats.secondary_fetches = executor.fetch_count + sum(
                                worker.fetch_count for worker in workers
                            )
                            stats.secondary_semijoins = executor.semijoin_count + sum(
                                worker.semijoin_count for worker in workers
                            )
                        if instances:
                            if stats is not None:
                                stats.second_level_nonempty += 1
                            _telemetry.count("schema.second_level_nonempty")
                        for pre, _ in instances:
                            if pre not in found:
                                found[pre] = entry.embcost
                                found_per_class[entry.pre] = (
                                    found_per_class.get(entry.pre, 0) + 1
                                )
                                emitted += 1
                                if stats is not None:
                                    stats.results_found = emitted
                                _telemetry.gauge("schema.results_found", emitted)
                                yield SchemaResult(pre, entry.embcost, entry)
                                if n is not None and emitted >= n:
                                    return
                                if total_possible is not None and emitted >= total_possible:
                                    drained = True
                                    if stats is not None:
                                        stats.exhausted = True
                                    return
                        pending.discard(entry.signature)
                    if cutoff < len(fresh):
                        drained = True
                        if stats is not None:
                            stats.exhausted = True
                        return
                else:
                    for entry in fresh:
                        if max_cost is not None and entry.embcost > max_cost:
                            # queries come in cost order: everything from
                            # here on exceeds the bound, in this round and
                            # in all larger-k rounds that merely extend
                            # the prefix
                            drained = True
                            if stats is not None:
                                stats.exhausted = True
                            return
                        executed.add(entry.signature)
                        if (
                            instances_per_class is not None
                            and found_per_class.get(entry.pre, 0)
                            >= instances_per_class.get(entry.pre, 0)
                        ):
                            # this root class is saturated: the skeleton
                            # can only re-deliver known roots at equal or
                            # higher cost
                            _telemetry.count("schema.saturation_skips")
                            continue
                        pending.add(entry.signature)
                        if stats is not None:
                            stats.second_level_executed += 1
                            stats.executed_skeletons.append(entry.format_skeleton())
                        _telemetry.count("schema.second_level_executed")
                        with _telemetry.timer("schema.secondary"):
                            instances = executor.execute(entry)
                        if stats is not None:
                            stats.secondary_fetches = executor.fetch_count
                            stats.secondary_semijoins = executor.semijoin_count
                        if instances:
                            if stats is not None:
                                stats.second_level_nonempty += 1
                            _telemetry.count("schema.second_level_nonempty")
                        for pre, _ in instances:
                            if pre not in found:
                                found[pre] = entry.embcost
                                found_per_class[entry.pre] = (
                                    found_per_class.get(entry.pre, 0) + 1
                                )
                                emitted += 1
                                if stats is not None:
                                    stats.results_found = emitted
                                _telemetry.gauge("schema.results_found", emitted)
                                yield SchemaResult(pre, entry.embcost, entry)
                                if n is not None and emitted >= n:
                                    return
                                if total_possible is not None and emitted >= total_possible:
                                    drained = True
                                    if stats is not None:
                                        stats.exhausted = True
                                    return
                        pending.discard(entry.signature)
                exhausted = len(queries) < k and not evaluator.monitor.truncated
                if exhausted:
                    drained = True
                    if stats is not None:
                        stats.exhausted = True
                    return
                if k >= max_k:
                    return
                k = min(max_k, k + delta)
                if growth == "geometric":
                    delta *= 2
                # the k-doubling restart the paper's prefix-erasure
                # amortizes: the top-k primary reruns from scratch with
                # the larger k
                _telemetry.count("schema.kdoubling_restarts")
        finally:
            if state_sink is not None:
                # in-flight skeletons (executed but not fully folded)
                # must re-run on resume; ``found`` dedups their replays
                executed.difference_update(pending)
                state_sink(
                    DriverState(
                        k=k,
                        delta=delta,
                        executed=executed,
                        found=found,
                        found_per_class=found_per_class,
                        exhausted=drained,
                    )
                )
            if pool is not None:
                pool.shutdown()
            if shared_segment is not None:
                if shared_segment_private:
                    # query-private export (overlay view / memory index)
                    shared_segment.destroy()
                else:
                    # registered export: drop this query's pin so the
                    # registry may destroy it once a generation bump
                    # retires it (it outlives the query until then)
                    release = getattr(self._isec, "release_segment", None)
                    if release is not None:
                        release(shared_segment)

    def _shared_secondary_setup(self):
        """The worker setup spec for process-pool rounds: export ``I_sec``
        into a shared segment and hand workers its name.  Returns
        ``(setup, segment, private)``; ``(None, None, False)`` when the
        secondary index cannot export (process rounds then fall back to
        threads)."""
        shared = getattr(self._isec, "shared_segment", None)
        if shared is not None:
            segment, private = shared()
            return _SharedExecutorSetup(segment.name), segment, private
        export = getattr(self._isec, "export_postings", None)
        if export is not None:
            from ..storage.shm import SharedPostingSegment

            segment = SharedPostingSegment.build(dict(export()))
            return _SharedExecutorSetup(segment.name), segment, True
        return None, None, False

    def _root_instance_counts(self, root) -> "dict[int, int] | None":
        """Instance counts of every candidate root class (the data nodes
        that could possibly be results).  ``None`` when no schema object
        is available (stored-index mode)."""
        if self._schema is None:
            return None
        labels = [root.label]
        labels.extend(label for label, _ in root.renamings)
        candidate_classes: set[int] = set()
        for label in labels:
            for posting in self._indexes.fetch(label, root.node_type):
                candidate_classes.add(posting[0])
        return {
            node: self._schema.instance_count(node) for node in candidate_classes
        }

    def count_results(
        self, query: "str | NameSelector", costs: "CostModel | None" = None
    ) -> int:
        """Total number of approximate results (full retrieval)."""
        return len(self.evaluate(query, costs))


def _execute_chunk(item: "tuple[SecondaryExecutor, list]") -> list:
    """Worker body of a parallel round: one worker's share of the batch,
    executed sequentially on that worker's dedicated executor (so its
    fetch memo is never touched by two threads)."""
    worker, entries = item
    return [worker.execute(entry) for entry in entries]


class _SharedExecutorSetup:
    """Process-worker setup: attach the shared ``I_sec`` segment and
    build the worker's own :class:`SecondaryExecutor` over it.  The
    executor (and its skeleton memo) lives for the worker's lifetime,
    mirroring the one-executor-per-thread-worker arrangement."""

    __slots__ = ("segment_name",)

    def __init__(self, segment_name: str) -> None:
        self.segment_name = segment_name

    def activate(self) -> SecondaryExecutor:
        from ..storage.shm import SharedPostingSegment
        from .indexes import SharedSecondaryIndex

        segment = SharedPostingSegment.attach(self.segment_name)
        return SecondaryExecutor(SharedSecondaryIndex(segment))


def _execute_chunk_shared(entries: list) -> list:
    """Process twin of :func:`_execute_chunk`: the executor comes from
    the worker's process-local context, not the task payload — only the
    skeleton entries and the result instances cross the pipe."""
    executor = worker_context()
    return [executor.execute(entry) for entry in entries]
