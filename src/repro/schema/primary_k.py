"""Algorithm ``primary`` adapted to the schema — finding the best k
second-level queries (Section 7.2).

The recursion is the one of Figure 4; the list operations are the
segmented top-k variants, and the result entries are second-level query
skeletons (schema node + label + pointer set).  Tree classes and the
transitivity of embeddings (Section 7.1) guarantee that running the same
algorithm over the schema's indexes enumerates exactly the images of all
approximate embeddings of the query in the schema.
"""

from __future__ import annotations

from ..approxql.expanded import ExpandedNode, ExpandedQuery, RepType
from ..errors import EvaluationError
from ..storage.cache import FetchMemo
from ..telemetry.collector import count as _telemetry_count
from ..xmltree.model import NodeType
from .indexes import SchemaNodeIndexes
from .topk_ops import (
    TopKList,
    TruncationMonitor,
    add_edge_k,
    fetch_k,
    intersect_k,
    join_k,
    merge_k,
    outerjoin_k,
    union_k,
)


class PrimaryKEvaluator:
    """Top-k run of ``primary`` over the schema indexes.

    One instance evaluates with one fixed ``k``; the incremental driver
    re-instantiates with growing k.  ``monitor.truncated`` reports whether
    any candidate was discarded anywhere — if not, the returned root list
    contains *all* second-level queries of the query's closure.
    """

    def __init__(self, indexes: SchemaNodeIndexes, k: int) -> None:
        if k < 1:
            raise EvaluationError(f"k must be positive, got {k}")
        self._indexes = indexes
        self._k = k
        self.monitor = TruncationMonitor()
        # Same lifetime contract as PrimaryEvaluator._fetch_cache (see
        # repro.storage.cache): one memo per top-k round — the driver
        # re-instantiates this evaluator when k grows.
        self._fetch_cache = FetchMemo()
        self._memo: dict[tuple[int, int], TopKList] = {}

    def evaluate(self, expanded: ExpandedQuery) -> TopKList:
        """All candidate second-level queries (root matches with their
        skeletons), as a segmented list over root schema classes."""
        self._memo.clear()
        root = expanded.root
        if root.reptype == RepType.LEAF:
            return self._fetch_leaf_merged(root)
        if root.reptype != RepType.NODE:
            raise EvaluationError("the root of an expanded query must be a selector")
        return self._evaluate_node_matches(root)

    # ------------------------------------------------------------------
    # Figure 4 over the schema
    # ------------------------------------------------------------------

    def _primary(self, node: ExpandedNode, edge_cost: float, ancestors: TopKList) -> TopKList:
        key = (node.uid, id(ancestors))
        base = self._memo.get(key)
        if base is None:
            base = self._primary_base(node, ancestors)
            self._memo[key] = base
        return add_edge_k(base, edge_cost)

    def _primary_base(self, node: ExpandedNode, ancestors: TopKList) -> TopKList:
        _telemetry_count("schema.topk_list_ops")
        k, monitor = self._k, self.monitor
        reptype = node.reptype
        if reptype == RepType.LEAF:
            descendants = self._fetch_leaf_merged(node)
            return outerjoin_k(ancestors, descendants, 0.0, node.delcost, k, monitor)
        if reptype == RepType.NODE:
            matches = self._evaluate_node_matches(node)
            return join_k(ancestors, matches, 0.0, k, monitor)
        if reptype == RepType.AND:
            assert node.left is not None and node.right is not None
            left = self._primary(node.left, 0.0, ancestors)
            right = self._primary(node.right, 0.0, ancestors)
            return intersect_k(left, right, 0.0, k, monitor)
        if reptype == RepType.OR:
            assert node.left is not None and node.right is not None
            left = self._primary(node.left, 0.0, ancestors)
            right = self._primary(node.right, node.edgecost, ancestors)
            return union_k(left, right, 0.0, k, monitor)
        raise EvaluationError(f"unknown representation type {reptype!r}")

    def _evaluate_node_matches(self, node: ExpandedNode) -> TopKList:
        assert node.child is not None
        candidates = self._fetch(node.label, node.node_type, as_leaf=False)
        result = self._primary(node.child, 0.0, candidates)
        for rename_label, rename_cost in node.renamings:
            renamed = self._fetch(rename_label, node.node_type, as_leaf=False)
            annotated = self._primary(node.child, 0.0, renamed)
            result = merge_k(result, annotated, rename_cost, self._k, self.monitor)
        return result

    # ------------------------------------------------------------------
    # fetching
    # ------------------------------------------------------------------

    def _fetch(self, label: str, node_type: NodeType, as_leaf: bool) -> TopKList:
        return self._fetch_cache.get_or_build(
            (label, node_type, as_leaf),
            lambda: fetch_k(self._indexes, label, node_type, as_leaf),
        )

    def _fetch_leaf_merged(self, leaf: ExpandedNode) -> TopKList:
        result = self._fetch(leaf.label, leaf.node_type, as_leaf=True)
        for rename_label, rename_cost in leaf.renamings:
            renamed = self._fetch(rename_label, leaf.node_type, as_leaf=True)
            result = merge_k(result, renamed, rename_cost, self._k, self.monitor)
        return result
