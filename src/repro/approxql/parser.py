"""Recursive-descent parser for approXQL (Section 3).

Grammar (``or`` binds weaker than ``and``; the paper's example queries
always parenthesize, so precedence only matters for convenience)::

    query    := path END
    path     := NAME ('[' expr ']')? | STRING
    expr     := and_expr ('or' and_expr)*
    and_expr := primary ('and' primary)*
    primary  := '(' expr ')' | path

A quoted string containing several words desugars into a conjunction of
one text selector per word, mirroring how document text is word-split
(Section 4): ``title["piano concerto"]`` means
``title["piano" and "concerto"]``.
"""

from __future__ import annotations

from ..errors import QuerySyntaxError
from ..xmltree.model import tokenize as tokenize_words
from .ast import AndExpr, NameSelector, OrExpr, QueryExpr, TextSelector
from .lexer import Token, TokenKind, tokenize_query


def parse_query(text: str) -> NameSelector:
    """Parse approXQL text; the root must be a name selector, which
    defines the scope of the search (Section 2's reading of query roots).
    """
    parser = _Parser(tokenize_query(text))
    root = parser.parse_path()
    parser.expect(TokenKind.END)
    if not isinstance(root, NameSelector):
        raise QuerySyntaxError("the query root must be a name selector")
    return root


def parse_expression(text: str) -> QueryExpr:
    """Parse a bare Boolean expression (useful for tests and tools)."""
    parser = _Parser(tokenize_query(text))
    expr = parser.parse_expr()
    parser.expect(TokenKind.END)
    return expr


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # ------------------------------------------------------------------
    # token plumbing
    # ------------------------------------------------------------------

    def peek(self) -> Token:
        return self._tokens[self._index]

    def advance(self) -> Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def expect(self, kind: TokenKind) -> Token:
        token = self.peek()
        if token.kind != kind:
            raise QuerySyntaxError(
                f"expected {kind.value!r} but found {token.value or 'end of query'!r}",
                token.position,
            )
        return self.advance()

    # ------------------------------------------------------------------
    # grammar rules
    # ------------------------------------------------------------------

    def parse_path(self) -> QueryExpr:
        token = self.peek()
        if token.kind == TokenKind.STRING:
            self.advance()
            return _text_selectors(token)
        if token.kind == TokenKind.NAME:
            self.advance()
            if self.peek().kind == TokenKind.LBRACKET:
                self.advance()
                content = self.parse_expr()
                self.expect(TokenKind.RBRACKET)
                return NameSelector(token.value, content)
            return NameSelector(token.value)
        raise QuerySyntaxError(
            f"expected a selector but found {token.value or 'end of query'!r}",
            token.position,
        )

    def parse_expr(self) -> QueryExpr:
        items = [self.parse_and_expr()]
        while self.peek().kind == TokenKind.OR:
            self.advance()
            items.append(self.parse_and_expr())
        return items[0] if len(items) == 1 else OrExpr(tuple(items))

    def parse_and_expr(self) -> QueryExpr:
        items = [self.parse_primary()]
        while self.peek().kind == TokenKind.AND:
            self.advance()
            items.append(self.parse_primary())
        return items[0] if len(items) == 1 else AndExpr(tuple(items))

    def parse_primary(self) -> QueryExpr:
        if self.peek().kind == TokenKind.LPAREN:
            self.advance()
            expr = self.parse_expr()
            self.expect(TokenKind.RPAREN)
            return expr
        return self.parse_path()


def _text_selectors(token: Token) -> QueryExpr:
    words = tokenize_words(token.value)
    if not words:
        raise QuerySyntaxError("text selector contains no words", token.position)
    if len(words) == 1:
        return TextSelector(words[0])
    return AndExpr(tuple(TextSelector(word) for word in words))
