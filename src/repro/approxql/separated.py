"""The separated query representation (Section 3).

A query containing ``or`` operators is broken into a set of conjunctive
queries — one per combination of ``or`` branches.  Conjunctive queries
are the labeled, typed trees (Definition 1 operates on them) that the
transformation formalism of Section 5 and the naive reference evaluator
consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product

from ..errors import QuerySyntaxError
from ..xmltree.model import NodeType
from .ast import AndExpr, NameSelector, OrExpr, QueryExpr, TextSelector

DEFAULT_SEPARATION_LIMIT = 4096


@dataclass(frozen=True)
class ConjNode:
    """One node of a conjunctive query tree.

    Leaves of type :attr:`NodeType.TEXT` are text selectors; struct nodes
    without children are *struct leaves* (bare name selectors).
    """

    label: str
    node_type: NodeType
    children: tuple["ConjNode", ...] = field(default=())

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def size(self) -> int:
        """Number of nodes in the conjunctive query tree."""
        return 1 + sum(child.size() for child in self.children)

    def leaves(self) -> list["ConjNode"]:
        """All leaves (text selectors and struct leaves) in preorder."""
        if self.is_leaf:
            return [self]
        found = []
        for child in self.children:
            found.extend(child.leaves())
        return found

    def unparse(self) -> str:
        """Render back to approXQL text (children and-connected)."""
        if self.node_type == NodeType.TEXT:
            return f'"{self.label}"'
        if not self.children:
            return self.label
        inner = " and ".join(child.unparse() for child in self.children)
        return f"{self.label}[{inner}]"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ConjNode({self.unparse()!r})"


def separate(query: NameSelector, limit: int = DEFAULT_SEPARATION_LIMIT) -> list[ConjNode]:
    """Expand a parsed query into its separated representation.

    Each ``or`` with *m* branches multiplies the number of conjunctive
    queries by *m*; ``limit`` guards against combinatorial explosions.
    """
    variants = _separate_selector(query)
    if len(variants) > limit:
        raise QuerySyntaxError(
            f"query separates into {len(variants)} conjunctive queries "
            f"(limit {limit}); simplify the query or raise the limit"
        )
    return variants


def _separate_selector(selector: "NameSelector | TextSelector") -> list[ConjNode]:
    if isinstance(selector, TextSelector):
        return [ConjNode(selector.word, NodeType.TEXT)]
    if selector.content is None:
        return [ConjNode(selector.label, NodeType.STRUCT)]
    variants = []
    for child_combination in _separate_expr(selector.content):
        variants.append(ConjNode(selector.label, NodeType.STRUCT, tuple(child_combination)))
    return variants


def _separate_expr(expr: QueryExpr) -> list[list[ConjNode]]:
    """All variants of the child list contributed by ``expr``."""
    if isinstance(expr, (NameSelector, TextSelector)):
        return [[variant] for variant in _separate_selector(expr)]
    if isinstance(expr, AndExpr):
        per_item = [_separate_expr(item) for item in expr.items]
        combined = []
        for combination in product(*per_item):
            children: list[ConjNode] = []
            for part in combination:
                children.extend(part)
            combined.append(children)
        return combined
    if isinstance(expr, OrExpr):
        variants = []
        for item in expr.items:
            variants.extend(_separate_expr(item))
        return variants
    raise QuerySyntaxError(f"unexpected expression node {type(expr).__name__}")
