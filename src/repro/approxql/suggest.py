"""Heuristic cost-model suggestion (the paper's declared future work).

The conclusion of the paper: "the development of domain-specific rules
for choosing basic transformation costs is a topic of future research."
This module implements a first set of such rules, derived purely from the
collection itself, so a user gets a sensible approximate-matching setup
without hand-writing a cost table:

* **Renamings** are suggested between labels that are likely spelling or
  morphological variants — small edit distance relative to length (so
  ``concerto``/``concertos`` qualifies but ``cd``/``mc`` does not) — and,
  for element names, between labels that occur in the same structural
  context (siblings under a shared parent name in the schema), which
  captures semantic alternatives such as ``composer``/``performer``.
  The rename cost grows with the edit distance and shrinks with context
  overlap.
* **Delete costs** for element names grow with the depth at which the
  label typically occurs (deep elements are specific, per Section 5.2 —
  deleting them is a mild widening; shallow elements define scope and are
  expensive to drop) and with how much structure sits beneath them.
* **Insert costs** fall with label frequency: ubiquitous wrapper
  elements (``tracks``) are cheap to skip over, rare ones are not.

The result is an ordinary :class:`~repro.approxql.costs.CostModel`; all
suggested values are integers, so the model serializes to cost files.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..schema.dataguide import TEXT_CLASS_LABEL, Schema
from ..xmltree.indexes import NodeIndexes
from ..xmltree.model import ROOT_LABEL, NodeType
from .costs import CostModel

#: internal labels that must never appear in a suggested cost model
_INTERNAL_LABELS = frozenset({ROOT_LABEL, TEXT_CLASS_LABEL})


def levenshtein(left: str, right: str, cap: int = 6) -> int:
    """Edit distance with an early-exit ``cap`` (distances above the cap
    are reported as ``cap``)."""
    if left == right:
        return 0
    if abs(len(left) - len(right)) >= cap:
        return cap
    previous = list(range(len(right) + 1))
    for row, left_char in enumerate(left, start=1):
        current = [row]
        best = row
        for column, right_char in enumerate(right, start=1):
            cost = min(
                previous[column] + 1,
                current[column - 1] + 1,
                previous[column - 1] + (left_char != right_char),
            )
            current.append(cost)
            if cost < best:
                best = cost
        if best >= cap:
            return cap
        previous = current
    return min(previous[-1], cap)


@dataclass(frozen=True)
class SuggestOptions:
    """Tuning knobs of the heuristics."""

    #: maximal edit distance for spelling-variant renamings
    max_edit_distance: int = 2
    #: strings shorter than this never get edit-distance renamings
    #: (cd/mc/tv would all collide)
    min_label_length: int = 4
    #: cost per edit step
    edit_cost: int = 2
    #: cost of a context-based (sibling) renaming
    context_rename_cost: int = 5
    #: base delete cost; scaled by shallowness
    delete_base: int = 3
    #: beyond this many suggestions per label, stop (keeps r bounded)
    max_renamings_per_label: int = 5


def suggest_cost_model(
    indexes: NodeIndexes,
    schema: "Schema | None" = None,
    options: "SuggestOptions | None" = None,
) -> CostModel:
    """Derive a complete cost model from a collection's indexes (and its
    schema, when given, for context-based renamings and depth-aware
    delete costs)."""
    options = options or SuggestOptions()
    model = CostModel(default_insert_cost=1.0)
    struct_labels = sorted(set(indexes.labels(NodeType.STRUCT)) - _INTERNAL_LABELS)
    text_labels = sorted(set(indexes.labels(NodeType.TEXT)) - _INTERNAL_LABELS)

    _suggest_spelling_renamings(model, struct_labels, NodeType.STRUCT, options)
    _suggest_spelling_renamings(model, text_labels, NodeType.TEXT, options)
    if schema is not None:
        _suggest_context_renamings(model, schema, options)
        _suggest_delete_costs(model, schema, options)
    _suggest_insert_costs(model, indexes, struct_labels)
    return model


# ----------------------------------------------------------------------
# individual heuristics
# ----------------------------------------------------------------------


def augment_for_query(
    model: CostModel,
    query,
    indexes: NodeIndexes,
    options: "SuggestOptions | None" = None,
) -> CostModel:
    """Return a copy of ``model`` with renamings for the query's *unknown*
    labels — selectors naming elements or terms that do not occur in the
    collection at all.

    A collection-derived model (see :func:`suggest_cost_model`) can only
    price labels it has seen; a user who writes ``titles`` against a
    collection that only knows ``title`` would otherwise get an
    unmatchable branch.  For each unknown query label, the closest
    existing labels by edit distance (with a laxer bound than the
    collection-side heuristic — unknown labels *must* be mapped somewhere
    or the branch is dead) are added as renamings.
    """
    from .ast import AndExpr, NameSelector, OrExpr, TextSelector

    options = options or SuggestOptions()
    augmented = model.copy()
    vocabularies = {
        NodeType.STRUCT: sorted(set(indexes.labels(NodeType.STRUCT)) - _INTERNAL_LABELS),
        NodeType.TEXT: sorted(set(indexes.labels(NodeType.TEXT)) - _INTERNAL_LABELS),
    }

    def visit(expr) -> None:
        if isinstance(expr, TextSelector):
            handle(expr.word, NodeType.TEXT)
        elif isinstance(expr, NameSelector):
            handle(expr.label, NodeType.STRUCT)
            if expr.content is not None:
                visit(expr.content)
        elif isinstance(expr, (AndExpr, OrExpr)):
            for item in expr.items:
                visit(item)

    def handle(label: str, node_type: NodeType) -> None:
        if indexes.posting_size(label, node_type) > 0:
            return  # the label exists; the base model governs it
        # laxer bound: up to half the label length, at least 2
        max_distance = max(2, len(label) // 2)
        scored = []
        for candidate in vocabularies[node_type]:
            distance = levenshtein(label, candidate, cap=max_distance + 1)
            if distance <= max_distance:
                scored.append((distance, candidate))
        scored.sort()
        for distance, candidate in scored[: options.max_renamings_per_label]:
            if augmented.rename_cost(label, candidate, node_type) == math.inf:
                augmented.add_renaming(
                    label, candidate, node_type, distance * options.edit_cost
                )

    visit(query)
    return augmented


def _suggest_spelling_renamings(
    model: CostModel, labels: list[str], node_type: NodeType, options: SuggestOptions
) -> None:
    suggested: dict[str, int] = {label: 0 for label in labels}
    # bucket by length so only plausible pairs are compared
    by_length: dict[int, list[str]] = {}
    for label in labels:
        if len(label) >= options.min_label_length:
            by_length.setdefault(len(label), []).append(label)
    for label in labels:
        if len(label) < options.min_label_length:
            continue
        for length in range(
            len(label) - options.max_edit_distance,
            len(label) + options.max_edit_distance + 1,
        ):
            for candidate in by_length.get(length, ()):
                if candidate == label:
                    continue
                if suggested[label] >= options.max_renamings_per_label:
                    break
                distance = levenshtein(label, candidate, cap=options.max_edit_distance + 1)
                if distance <= options.max_edit_distance:
                    model.add_renaming(
                        label, candidate, node_type, distance * options.edit_cost
                    )
                    suggested[label] += 1


def _suggest_context_renamings(
    model: CostModel, schema: Schema, options: SuggestOptions
) -> None:
    """Element names that appear as siblings under the same parent name
    are plausible alternatives (composer/performer under cd)."""
    siblings_by_parent: dict[str, set[str]] = {}
    for node in range(len(schema)):
        if schema.is_text_class(node):
            continue
        parent = schema.parents[node]
        if parent == -1 or schema.labels[node] in _INTERNAL_LABELS:
            continue
        siblings_by_parent.setdefault(schema.labels[parent], set()).add(schema.labels[node])
    counts: dict[str, int] = {}
    for group in siblings_by_parent.values():
        ordered = sorted(group)
        for label in ordered:
            for candidate in ordered:
                if candidate == label:
                    continue
                if counts.get(label, 0) >= options.max_renamings_per_label:
                    break
                if model.rename_cost(label, candidate, NodeType.STRUCT) != math.inf:
                    continue  # spelling heuristic already priced it lower
                model.add_renaming(
                    label, candidate, NodeType.STRUCT, options.context_rename_cost
                )
                counts[label] = counts.get(label, 0) + 1


def _suggest_delete_costs(model: CostModel, schema: Schema, options: SuggestOptions) -> None:
    """Deep, structure-light element names are cheap to delete; shallow
    scope-defining ones are expensive."""
    depth_sum: dict[str, int] = {}
    occurrences: dict[str, int] = {}
    max_depth = 1
    for node in range(len(schema)):
        if schema.is_text_class(node):
            continue
        label = schema.labels[node]
        if label in _INTERNAL_LABELS:
            continue
        depth = len(schema.label_type_path(node))
        depth_sum[label] = depth_sum.get(label, 0) + depth
        occurrences[label] = occurrences.get(label, 0) + 1
        max_depth = max(max_depth, depth)
    for label, total in depth_sum.items():
        mean_depth = total / occurrences[label]
        # depth 1 (document roots) -> expensive; max depth -> delete_base
        shallowness = (max_depth - mean_depth) / max(1, max_depth - 1)
        cost = options.delete_base + round(shallowness * 3 * options.delete_base)
        model.set_delete_cost(label, NodeType.STRUCT, cost)


def _suggest_insert_costs(
    model: CostModel, indexes: NodeIndexes, struct_labels: list[str]
) -> None:
    """Frequent wrapper elements are cheap to insert implicitly."""
    counts = {
        label: indexes.posting_size(label, NodeType.STRUCT) for label in struct_labels
    }
    if not counts:
        return
    most_common = max(counts.values())
    for label, count in counts.items():
        if count == 0:
            continue
        # 1 for the most common label, +1 per order of magnitude rarer
        cost = 1 + round(math.log10(most_common / count)) if count else 1
        model.set_insert_cost(label, max(1, cost))
