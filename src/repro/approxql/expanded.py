"""The expanded query representation (Section 6.1).

The expanded representation encodes *all* semi-transformed queries — the
queries derivable by deletions and renamings but no insertions — in one
DAG of four representation types:

``node``
    An inner name selector; carries its label and the finite renamings.
``leaf``
    A text selector or a bare name selector (a struct leaf); carries its
    label, finite renamings, and its delete cost.
``and``
    A binary conjunction.
``or``
    Either a genuine ``or`` of the query (edge cost 0) or the deletion
    choice for a deletable inner node: the left edge leads to the node,
    the right edge *bridges* it and is annotated with the delete cost.

Bridging edges point at the **same** child object the node itself uses,
which makes the representation a DAG; algorithm ``primary`` memoizes on
(node uid, ancestor list) — the paper's "dynamic programming to avoid the
duplicate evaluation of query subtrees".
"""

from __future__ import annotations

import enum
import itertools
from collections.abc import Iterator

from ..errors import QuerySyntaxError
from ..xmltree.model import NodeType
from .ast import AndExpr, NameSelector, OrExpr, QueryExpr, TextSelector
from .costs import INFINITE, CostModel


class RepType(enum.Enum):
    NODE = "node"
    LEAF = "leaf"
    AND = "and"
    OR = "or"


class ExpandedNode:
    """One node of the expanded representation DAG."""

    __slots__ = (
        "uid",
        "reptype",
        "label",
        "node_type",
        "renamings",
        "delcost",
        "child",
        "left",
        "right",
        "edgecost",
    )

    def __init__(self, uid: int, reptype: RepType) -> None:
        self.uid = uid
        self.reptype = reptype
        self.label: str = ""
        self.node_type: NodeType = NodeType.STRUCT
        self.renamings: list[tuple[str, float]] = []
        self.delcost: float = INFINITE
        self.child: ExpandedNode | None = None
        self.left: ExpandedNode | None = None
        self.right: ExpandedNode | None = None
        self.edgecost: float = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.reptype in (RepType.NODE, RepType.LEAF):
            return f"ExpandedNode({self.reptype.value} {self.label!r} uid={self.uid})"
        return f"ExpandedNode({self.reptype.value} uid={self.uid})"


class ExpandedQuery:
    """The expanded representation of one approXQL query."""

    def __init__(self, root: ExpandedNode, node_count: int, leaf_uids: frozenset[int]) -> None:
        self.root = root
        self.node_count = node_count
        #: uids of the ``leaf`` representation nodes — the query leaves the
        #: global "at least one leaf must match" rule ranges over.
        self.leaf_uids = leaf_uids

    def iter_unique_nodes(self) -> Iterator[ExpandedNode]:
        """Every DAG node exactly once (preorder, left before right)."""
        seen: set[int] = set()
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.uid in seen:
                continue
            seen.add(node.uid)
            yield node
            for successor in (node.right, node.left, node.child):
                if successor is not None:
                    stack.append(successor)

    def max_renamings(self) -> int:
        """The *r* of the complexity bound: maximal renamings per selector."""
        counts = [
            len(node.renamings)
            for node in self.iter_unique_nodes()
            if node.reptype in (RepType.NODE, RepType.LEAF)
        ]
        return max(counts, default=0)

    def format(self) -> str:
        """Indented rendering of the DAG (shared nodes marked)."""
        lines: list[str] = []
        seen: set[int] = set()
        self._format(self.root, 0, "", seen, lines)
        return "\n".join(lines)

    def _format(
        self, node: ExpandedNode, depth: int, edge: str, seen: set[int], lines: list[str]
    ) -> None:
        indent = "  " * depth + edge
        if node.uid in seen:
            lines.append(f"{indent}*shared uid={node.uid}*")
            return
        seen.add(node.uid)
        if node.reptype == RepType.LEAF:
            extras = "".join(f" |{label}:{cost}" for label, cost in node.renamings)
            lines.append(
                f"{indent}leaf {node.label!r}{extras} del={node.delcost} uid={node.uid}"
            )
        elif node.reptype == RepType.NODE:
            extras = "".join(f" |{label}:{cost}" for label, cost in node.renamings)
            lines.append(f"{indent}node {node.label!r}{extras} uid={node.uid}")
            assert node.child is not None
            self._format(node.child, depth + 1, "", seen, lines)
        elif node.reptype == RepType.AND:
            lines.append(f"{indent}and uid={node.uid}")
            assert node.left is not None and node.right is not None
            self._format(node.left, depth + 1, "", seen, lines)
            self._format(node.right, depth + 1, "", seen, lines)
        else:
            lines.append(f"{indent}or edge={node.edgecost} uid={node.uid}")
            assert node.left is not None and node.right is not None
            self._format(node.left, depth + 1, "", seen, lines)
            self._format(node.right, depth + 1, "bridge: ", seen, lines)


class _Builder:
    def __init__(self, costs: CostModel) -> None:
        self._costs = costs
        self._uids = itertools.count()
        self._leaf_uids: set[int] = set()

    def _new(self, reptype: RepType) -> ExpandedNode:
        return ExpandedNode(next(self._uids), reptype)

    def build_root(self, query: NameSelector) -> ExpandedNode:
        # The root is never deletable (Definition 3) and is always a
        # ``node`` unless the whole query is a single bare selector.
        if query.content is None:
            return self._build_leaf(query.label, NodeType.STRUCT)
        node = self._new(RepType.NODE)
        node.label = query.label
        node.node_type = NodeType.STRUCT
        node.renamings = self._costs.renamings(query.label, NodeType.STRUCT)
        node.child = self.build_expr(query.content)
        return node

    def build_expr(self, expr: QueryExpr) -> ExpandedNode:
        if isinstance(expr, TextSelector):
            return self._build_leaf(expr.word, NodeType.TEXT)
        if isinstance(expr, NameSelector):
            return self._build_name(expr)
        if isinstance(expr, AndExpr):
            return self._fold(expr.items, RepType.AND)
        if isinstance(expr, OrExpr):
            return self._fold(expr.items, RepType.OR)
        raise QuerySyntaxError(f"unexpected expression node {type(expr).__name__}")

    def _fold(self, items: tuple[QueryExpr, ...], reptype: RepType) -> ExpandedNode:
        current = self.build_expr(items[0])
        for item in items[1:]:
            parent = self._new(reptype)
            parent.left = current
            parent.right = self.build_expr(item)
            parent.edgecost = 0.0
            current = parent
        return current

    def _build_leaf(self, label: str, node_type: NodeType) -> ExpandedNode:
        leaf = self._new(RepType.LEAF)
        leaf.label = label
        leaf.node_type = node_type
        leaf.renamings = self._costs.renamings(label, node_type)
        leaf.delcost = self._costs.delete_cost(label, node_type)
        self._leaf_uids.add(leaf.uid)
        return leaf

    def _build_name(self, selector: NameSelector) -> ExpandedNode:
        if selector.content is None:
            return self._build_leaf(selector.label, NodeType.STRUCT)
        inner = self.build_expr(selector.content)
        node = self._new(RepType.NODE)
        node.label = selector.label
        node.node_type = NodeType.STRUCT
        node.renamings = self._costs.renamings(selector.label, NodeType.STRUCT)
        node.child = inner
        delcost = self._costs.delete_cost(selector.label, NodeType.STRUCT)
        if delcost == INFINITE:
            return node
        # deletable inner node: or-parent whose right edge bridges to the
        # *shared* child representation
        choice = self._new(RepType.OR)
        choice.left = node
        choice.right = inner
        choice.edgecost = delcost
        return choice


def build_expanded(query: NameSelector, costs: CostModel) -> ExpandedQuery:
    """Build the expanded representation of ``query`` under ``costs``."""
    builder = _Builder(costs)
    root = builder.build_root(query)
    node_count = sum(1 for _ in ExpandedQuery(root, 0, frozenset()).iter_unique_nodes())
    return ExpandedQuery(root, node_count, frozenset(builder._leaf_uids))
