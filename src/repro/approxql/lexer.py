"""Tokenizer for approXQL query text."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import QuerySyntaxError


class TokenKind(enum.Enum):
    NAME = "name"
    STRING = "string"
    LBRACKET = "["
    RBRACKET = "]"
    LPAREN = "("
    RPAREN = ")"
    AND = "and"
    OR = "or"
    END = "end"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    value: str
    position: int


_SINGLE_CHAR = {
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
}

# The paper's examples use typographic double quotes in places; accept
# straight and curly variants on both sides.
_OPEN_QUOTES = {'"': '"', "'": "'", "“": "”", "‘": "’", "„": "“"}
_CLOSE_QUOTES = set('"\'') | {"”", "’", "“"}


def tokenize_query(text: str) -> list[Token]:
    """Split approXQL text into tokens; raises on malformed input."""
    tokens: list[Token] = []
    pos = 0
    length = len(text)
    while pos < length:
        char = text[pos]
        if char in " \t\r\n":
            pos += 1
            continue
        if char in _SINGLE_CHAR:
            tokens.append(Token(_SINGLE_CHAR[char], char, pos))
            pos += 1
            continue
        if char in _OPEN_QUOTES:
            start = pos
            pos += 1
            begin = pos
            while pos < length and text[pos] not in _CLOSE_QUOTES:
                pos += 1
            if pos >= length:
                raise QuerySyntaxError("unterminated string literal", start)
            tokens.append(Token(TokenKind.STRING, text[begin:pos], start))
            pos += 1
            continue
        if char.isalnum() or char == "_":
            start = pos
            while pos < length and (text[pos].isalnum() or text[pos] in "_-.:"):
                pos += 1
            word = text[start:pos]
            lowered = word.lower()
            if lowered == "and":
                tokens.append(Token(TokenKind.AND, word, start))
            elif lowered == "or":
                tokens.append(Token(TokenKind.OR, word, start))
            else:
                tokens.append(Token(TokenKind.NAME, word, start))
            continue
        raise QuerySyntaxError(f"unexpected character {char!r}", pos)
    tokens.append(Token(TokenKind.END, "", length))
    return tokens
