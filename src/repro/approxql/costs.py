"""The transformation cost model (Definitions 2–6).

Costs are bound to labels — the paper's "simplest variant":

* ``insert`` costs attach to **data** labels of struct nodes (text leaves
  can never be inserted); unlisted labels cost
  :attr:`CostModel.default_insert_cost` (1, as in the paper's example).
* ``delete`` costs attach to **query** labels; unlisted labels cost
  infinity, i.e. the node must not be deleted.
* ``rename`` costs attach to ordered (from → to) label pairs of the same
  node type; unlisted pairs cost infinity.

Struct and text labels live in separate key spaces, so a term and an
element that happen to share a spelling do not share costs.

The module also reads and writes the *cost files* the experiment section
pairs with each generated query (Section 8.1): a line-based format with
``insert`` / ``delete`` / ``rename`` directives.
"""

from __future__ import annotations

import math
import re
from collections.abc import Iterable

from ..errors import CostModelError
from ..xmltree.model import NodeType

INFINITE = math.inf

_TYPE_NAMES = {"struct": NodeType.STRUCT, "text": NodeType.TEXT}
_NAMES_BY_TYPE = {NodeType.STRUCT: "struct", NodeType.TEXT: "text"}


def _check_cost(cost: float, what: str) -> float:
    if not isinstance(cost, (int, float)) or isinstance(cost, bool):
        raise CostModelError(f"{what} must be a number, got {cost!r}")
    if math.isnan(cost) or cost < 0:
        raise CostModelError(f"{what} must be non-negative, got {cost!r}")
    return float(cost)


class CostModel:
    """Mutable registry of insertion, deletion, and renaming costs.

    The example of Section 6 is expressed as::

        model = CostModel()
        model.set_insert_cost("category", 4)
        model.set_delete_cost("composer", NodeType.STRUCT, 7)
        model.add_renaming("cd", "dvd", NodeType.STRUCT, 6)
    """

    def __init__(self, default_insert_cost: float = 1.0) -> None:
        self.default_insert_cost = _check_cost(default_insert_cost, "default insert cost")
        self._insert: dict[str, float] = {}
        self._delete: dict[tuple[NodeType, str], float] = {}
        self._rename: dict[tuple[NodeType, str], list[tuple[str, float]]] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------

    def set_insert_cost(self, label: str, cost: float) -> "CostModel":
        """Set the cost of inserting a struct node labeled ``label``."""
        self._insert[label] = _check_cost(cost, f"insert cost of {label!r}")
        return self

    def set_delete_cost(self, label: str, node_type: NodeType, cost: float) -> "CostModel":
        """Set the cost of deleting a query node with ``label``."""
        self._delete[(node_type, label)] = _check_cost(cost, f"delete cost of {label!r}")
        return self

    def add_renaming(
        self, from_label: str, to_label: str, node_type: NodeType, cost: float
    ) -> "CostModel":
        """Register an alternative label with its renaming cost."""
        if from_label == to_label:
            raise CostModelError(f"renaming {from_label!r} to itself is meaningless")
        checked = _check_cost(cost, f"rename cost {from_label!r}->{to_label!r}")
        alternatives = self._rename.setdefault((node_type, from_label), [])
        for index, (existing, _) in enumerate(alternatives):
            if existing == to_label:
                alternatives[index] = (to_label, checked)
                return self
        alternatives.append((to_label, checked))
        return self

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def insert_cost(self, label: str) -> float:
        """Cost of inserting a struct node with ``label`` into a query."""
        return self._insert.get(label, self.default_insert_cost)

    def delete_cost(self, label: str, node_type: NodeType) -> float:
        """Cost of deleting a query node; infinite when not allowed."""
        return self._delete.get((node_type, label), INFINITE)

    def renamings(self, label: str, node_type: NodeType) -> list[tuple[str, float]]:
        """Alternative (label, cost) pairs for a query node (finite only)."""
        alternatives = self._rename.get((node_type, label), [])
        return [(to, cost) for to, cost in alternatives if cost != INFINITE]

    def rename_cost(self, from_label: str, to_label: str, node_type: NodeType) -> float:
        """Cost of renaming ``from_label`` to ``to_label`` (0 for identity,
        infinite when the renaming is not registered)."""
        if from_label == to_label:
            return 0.0
        for to, cost in self._rename.get((node_type, from_label), []):
            if to == to_label:
                return cost
        return INFINITE

    def copy(self) -> "CostModel":
        """An independent copy (mutating it leaves this model untouched)."""
        duplicate = CostModel(default_insert_cost=self.default_insert_cost)
        duplicate._insert.update(self._insert)
        duplicate._delete.update(self._delete)
        for key, alternatives in self._rename.items():
            duplicate._rename[key] = list(alternatives)
        return duplicate

    @property
    def insert_fingerprint(self) -> tuple:
        """Hashable snapshot of the insert-cost table; data trees use it
        to skip redundant re-encodings."""
        return (self.default_insert_cost, tuple(sorted(self._insert.items())))

    @property
    def fingerprint(self) -> tuple:
        """Hashable snapshot of the *whole* model — insert, delete, and
        rename tables.  Two models with equal fingerprints produce
        byte-identical expansions and results for every query, which is
        what the compiled-query cache keys on (``insert_fingerprint``
        alone is not enough: delete and rename costs change the expanded
        query and therefore the answers)."""
        return (
            self.default_insert_cost,
            tuple(sorted(self._insert.items())),
            tuple(sorted(self._delete.items())),
            tuple(
                (key, tuple(sorted(alternatives)))
                for key, alternatives in sorted(self._rename.items())
            ),
        )

    # ------------------------------------------------------------------
    # cost-file round trip (the per-query files of Section 8.1)
    # ------------------------------------------------------------------

    def to_lines(self) -> list[str]:
        """Serialize the model to cost-file lines."""
        lines = [f"default-insert {_format_cost(self.default_insert_cost)}"]
        for label, cost in sorted(self._insert.items()):
            lines.append(f"insert {label} {_format_cost(cost)}")
        for (node_type, label), cost in sorted(
            self._delete.items(), key=lambda item: (item[0][0], item[0][1])
        ):
            lines.append(f"delete {_NAMES_BY_TYPE[node_type]} {label} {_format_cost(cost)}")
        for (node_type, label), alternatives in sorted(
            self._rename.items(), key=lambda item: (item[0][0], item[0][1])
        ):
            for to_label, cost in alternatives:
                lines.append(
                    f"rename {_NAMES_BY_TYPE[node_type]} {label} {to_label} {_format_cost(cost)}"
                )
        return lines

    @classmethod
    def from_lines(cls, lines: Iterable[str]) -> "CostModel":
        """Parse cost-file lines (inverse of :meth:`to_lines`)."""
        model = cls()
        for number, raw in enumerate(lines, start=1):
            # a comment is a '#' at line start, or one surrounded by
            # whitespace ("... 2 # note"); this keeps labels containing
            # '#' (e.g. the '#root' super-root) intact
            line = raw.strip()
            if line.startswith("#"):
                continue
            line = re.split(r"\s#(?=\s|$)", line, maxsplit=1)[0].strip()
            if not line:
                continue
            fields = line.split()
            try:
                directive = fields[0]
                if directive == "default-insert" and len(fields) == 2:
                    model.default_insert_cost = _check_cost(
                        _parse_cost(fields[1]), "default insert cost"
                    )
                elif directive == "insert" and len(fields) == 3:
                    model.set_insert_cost(fields[1], _parse_cost(fields[2]))
                elif directive == "delete" and len(fields) == 4:
                    model.set_delete_cost(
                        fields[2], _parse_type(fields[1]), _parse_cost(fields[3])
                    )
                elif directive == "rename" and len(fields) == 5:
                    model.add_renaming(
                        fields[2], fields[3], _parse_type(fields[1]), _parse_cost(fields[4])
                    )
                else:
                    raise CostModelError(f"unrecognized directive {line!r}")
            except CostModelError as error:
                raise CostModelError(f"cost file line {number}: {error}") from None
        return model

    def save(self, path: str) -> None:
        """Write the model to a cost file at ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(self.to_lines()) + "\n")

    @classmethod
    def load(cls, path: str) -> "CostModel":
        """Read a cost file written by :meth:`save`."""
        with open(path, encoding="utf-8") as handle:
            return cls.from_lines(handle)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CostModel(inserts={len(self._insert)}, deletes={len(self._delete)}, "
            f"renamings={sum(len(v) for v in self._rename.values())})"
        )


def _parse_cost(text: str) -> float:
    if text.lower() in ("inf", "infinite", "infinity"):
        return INFINITE
    try:
        return float(text)
    except ValueError:
        raise CostModelError(f"bad cost literal {text!r}") from None


def _parse_type(text: str) -> NodeType:
    try:
        return _TYPE_NAMES[text.lower()]
    except KeyError:
        raise CostModelError(f"bad node type {text!r} (expected struct/text)") from None


def _format_cost(cost: float) -> str:
    if cost == INFINITE:
        return "inf"
    if cost == int(cost):
        return str(int(cost))
    return repr(cost)


def paper_example_cost_model() -> CostModel:
    """The cost table of Section 6, used by the worked examples and tests.

    =========  ====  ===========  ====  ==========================  ====
    insertion  cost  deletion     cost  renaming                    cost
    =========  ====  ===========  ====  ==========================  ====
    category   4     composer     7     cd -> dvd                   6
    cd         2     "concerto"   6     cd -> mc                    4
    composer   5     "piano"      8     composer -> performer       4
    performer  5     title        5     "concerto" -> "sonata"      3
    title      3     track        3     title -> category           4
    =========  ====  ===========  ====  ==========================  ====

    All unlisted delete and rename costs are infinite; all remaining
    insert costs are 1.
    """
    model = CostModel(default_insert_cost=1.0)
    for label, cost in [
        ("category", 4), ("cd", 2), ("composer", 5), ("performer", 5),
        ("title", 3), ("track", 3),
    ]:
        model.set_insert_cost(label, cost)
    for label, node_type, cost in [
        ("composer", NodeType.STRUCT, 7),
        ("concerto", NodeType.TEXT, 6),
        ("piano", NodeType.TEXT, 8),
        ("title", NodeType.STRUCT, 5),
        ("track", NodeType.STRUCT, 3),
    ]:
        model.set_delete_cost(label, node_type, cost)
    for from_label, to_label, node_type, cost in [
        ("cd", "dvd", NodeType.STRUCT, 6),
        ("cd", "mc", NodeType.STRUCT, 4),
        ("composer", "performer", NodeType.STRUCT, 4),
        ("concerto", "sonata", NodeType.TEXT, 3),
        ("title", "category", NodeType.STRUCT, 4),
    ]:
        model.add_renaming(from_label, to_label, node_type, cost)
    return model
