"""The approXQL query language (Sections 3 and 6.1).

Parsing, the separated representation (OR expansion into conjunctive
queries), the cost model of the transformation semantics, and the
expanded representation consumed by the evaluation algorithms.
"""

from .ast import (
    AndExpr,
    NameSelector,
    OrExpr,
    QueryExpr,
    TextSelector,
    count_or_operators,
    count_selectors,
)
from .costs import INFINITE, CostModel, paper_example_cost_model
from .expanded import ExpandedNode, ExpandedQuery, RepType, build_expanded
from .parser import parse_expression, parse_query
from .separated import ConjNode, separate
from .suggest import SuggestOptions, augment_for_query, levenshtein, suggest_cost_model

__all__ = [
    "AndExpr",
    "ConjNode",
    "CostModel",
    "ExpandedNode",
    "ExpandedQuery",
    "INFINITE",
    "NameSelector",
    "OrExpr",
    "QueryExpr",
    "RepType",
    "SuggestOptions",
    "TextSelector",
    "augment_for_query",
    "build_expanded",
    "levenshtein",
    "suggest_cost_model",
    "count_or_operators",
    "count_selectors",
    "paper_example_cost_model",
    "parse_expression",
    "parse_query",
    "separate",
]
