"""Abstract syntax of approXQL queries (Section 3).

The syntactic subset of the paper: name selectors, text selectors, the
containment operator ``[]``, and the Boolean operators ``and`` / ``or``.
A parsed query is a tree of the four node kinds below; ``unparse`` turns
it back into query text.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import QuerySyntaxError


class QueryExpr:
    """Base class of all approXQL AST nodes."""

    def unparse(self) -> str:
        """Render the expression back to approXQL query text."""
        raise NotImplementedError


@dataclass(frozen=True)
class TextSelector(QueryExpr):
    """A quoted search term: matches a text node with that word label."""

    word: str

    def __post_init__(self) -> None:
        if not self.word:
            raise QuerySyntaxError("text selectors need a non-empty term")

    def unparse(self) -> str:
        return f'"{self.word}"'


@dataclass(frozen=True)
class NameSelector(QueryExpr):
    """An element-name selector, optionally with contained conditions.

    ``content`` is ``None`` for a bare selector (a *struct leaf* of the
    query tree, e.g. the trailing ``name`` of the paper's query pattern 3)
    and otherwise the Boolean expression inside ``[...]``.
    """

    label: str
    content: "QueryExpr | None" = None

    def __post_init__(self) -> None:
        if not self.label:
            raise QuerySyntaxError("name selectors need a non-empty label")

    def unparse(self) -> str:
        if self.content is None:
            return self.label
        return f"{self.label}[{self.content.unparse()}]"


@dataclass(frozen=True)
class AndExpr(QueryExpr):
    """Conjunction of two or more subexpressions."""

    items: tuple[QueryExpr, ...]

    def __post_init__(self) -> None:
        if len(self.items) < 2:
            raise QuerySyntaxError("'and' needs at least two operands")

    def unparse(self) -> str:
        return " and ".join(_wrap(item) for item in self.items)


@dataclass(frozen=True)
class OrExpr(QueryExpr):
    """Disjunction of two or more subexpressions."""

    items: tuple[QueryExpr, ...]

    def __post_init__(self) -> None:
        if len(self.items) < 2:
            raise QuerySyntaxError("'or' needs at least two operands")

    def unparse(self) -> str:
        return " or ".join(_wrap(item) for item in self.items)


def _wrap(expr: QueryExpr) -> str:
    if isinstance(expr, (AndExpr, OrExpr)):
        return f"({expr.unparse()})"
    return expr.unparse()


def count_or_operators(expr: QueryExpr) -> int:
    """Number of binary 'or' decisions in the query (a query with k of
    them separates into 2**k conjunctive queries, Section 3)."""
    if isinstance(expr, OrExpr):
        own = len(expr.items) - 1
        return own + sum(count_or_operators(item) for item in expr.items)
    if isinstance(expr, AndExpr):
        return sum(count_or_operators(item) for item in expr.items)
    if isinstance(expr, NameSelector) and expr.content is not None:
        return count_or_operators(expr.content)
    return 0


def count_selectors(expr: QueryExpr) -> int:
    """Number of name/text selectors (the *n* of the complexity bounds)."""
    if isinstance(expr, (OrExpr, AndExpr)):
        return sum(count_selectors(item) for item in expr.items)
    if isinstance(expr, NameSelector):
        inner = count_selectors(expr.content) if expr.content is not None else 0
        return 1 + inner
    return 1
