"""The transformation formalism of Section 5, made executable.

Basic transformations applied literally (Definitions 2–5), explicit
enumeration of the semi-transformed closure, and a naive reference
evaluator used as ground truth by the engine equivalence tests.
"""

from .closure import (
    DEFAULT_CLOSURE_LIMIT,
    SemiTransformed,
    apply_definition4,
    count_semi_transformed,
    semi_transformed_queries,
)
from .editdistance import EditCosts, tree_edit_distance
from .naive import RootCostPair, evaluate_naive
from .ops import (
    AppliedTransformation,
    delete_inner,
    delete_leaf,
    insert_node,
    preorder_nodes,
    rename,
)

__all__ = [
    "AppliedTransformation",
    "DEFAULT_CLOSURE_LIMIT",
    "EditCosts",
    "RootCostPair",
    "SemiTransformed",
    "apply_definition4",
    "count_semi_transformed",
    "delete_inner",
    "delete_leaf",
    "evaluate_naive",
    "insert_node",
    "preorder_nodes",
    "rename",
    "semi_transformed_queries",
    "tree_edit_distance",
]
