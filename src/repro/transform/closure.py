"""Explicit enumeration of semi-transformed queries (Sections 5.3, 6.1).

A *semi-transformed query* is derived from a conjunctive query by a
sequence of deletions and renamings, but no insertions (insertions are
handled implicitly by the ancestor-descendant embedding).  This module
materializes the set the expanded representation encodes implicitly —
exponential in general, so it is guarded by a limit and intended for the
formalism tests and the naive reference evaluator, not for production
evaluation.

Deletability follows the engine semantics: a node may be deleted iff the
cost model assigns it a finite delete cost (the local rule of Definition 4
is realized by the cost model — see ``apply_definition4``), and a
semi-transformed query is *valid* only if it retains at least one leaf of
the original query (the global rule of the paper's full algorithm).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from ..approxql.costs import INFINITE, CostModel
from ..approxql.separated import ConjNode
from ..errors import EvaluationError

DEFAULT_CLOSURE_LIMIT = 500_000


@dataclass(frozen=True)
class SemiTransformed:
    """One semi-transformed query with its transformation cost."""

    query: ConjNode
    cost: float
    retained_leaves: int

    @property
    def is_valid(self) -> bool:
        """The global rule: at least one original leaf must remain."""
        return self.retained_leaves > 0


def semi_transformed_queries(
    conjunct: ConjNode, costs: CostModel, limit: int = DEFAULT_CLOSURE_LIMIT
) -> list[SemiTransformed]:
    """All semi-transformed queries derivable from ``conjunct``.

    Includes the invalid ones (no leaf retained); callers filter on
    :attr:`SemiTransformed.is_valid` as needed.
    """
    total_leaves = len(conjunct.leaves())
    results: list[SemiTransformed] = []
    for nodes, cost, deleted_leaves in _variants(conjunct, costs, is_root=True, limit=limit):
        if len(nodes) != 1:
            raise EvaluationError("internal error: root variant must be a single node")
        results.append(SemiTransformed(nodes[0], cost, total_leaves - deleted_leaves))
        if len(results) > limit:
            raise EvaluationError(
                f"semi-transformed closure exceeds {limit} queries; "
                "shrink the query or the renaming lists"
            )
    return results


def count_semi_transformed(conjunct: ConjNode, costs: CostModel) -> int:
    """Number of semi-transformed queries without materializing trees."""
    return _count(conjunct, costs, is_root=True)


def _count(node: ConjNode, costs: CostModel, is_root: bool) -> int:
    keep_labels = 1 + len(costs.renamings(node.label, node.node_type))
    children_product = 1
    for child in node.children:
        children_product *= _count(child, costs, is_root=False)
    total = keep_labels * children_product
    if not is_root and costs.delete_cost(node.label, node.node_type) != INFINITE:
        total += 1 if node.is_leaf else children_product
    return total


def _variants(
    node: ConjNode, costs: CostModel, is_root: bool, limit: int
) -> list[tuple[tuple[ConjNode, ...], float, int]]:
    """All variants the subtree at ``node`` contributes to its parent's
    child list: ``(spliced nodes, cost, deleted leaf count)``."""
    results: list[tuple[tuple[ConjNode, ...], float, int]] = []
    child_combinations = _combine_children(node, costs, limit)
    if not is_root:
        delcost = costs.delete_cost(node.label, node.node_type)
        if delcost != INFINITE:
            if node.is_leaf:
                results.append(((), delcost, 1))
            else:
                # deleting an inner node splices its (transformed)
                # children into the parent's child list (Definition 3)
                for children, child_cost, deleted in child_combinations:
                    results.append((children, delcost + child_cost, deleted))
    label_choices = [(node.label, 0.0)]
    label_choices.extend(costs.renamings(node.label, node.node_type))
    for children, child_cost, deleted in child_combinations:
        for label, rename_cost in label_choices:
            kept = ConjNode(label, node.node_type, children)
            results.append(((kept,), child_cost + rename_cost, deleted))
            if len(results) > limit:
                raise EvaluationError(
                    f"semi-transformed closure exceeds {limit} variants at "
                    f"node {node.label!r}"
                )
    return results


def _combine_children(
    node: ConjNode, costs: CostModel, limit: int
) -> list[tuple[tuple[ConjNode, ...], float, int]]:
    if node.is_leaf:
        return [((), 0.0, 0)]
    per_child = [_variants(child, costs, is_root=False, limit=limit) for child in node.children]
    combined: list[tuple[tuple[ConjNode, ...], float, int]] = []
    for combination in product(*per_child):
        children: list[ConjNode] = []
        cost = 0.0
        deleted = 0
        for nodes, node_cost, node_deleted in combination:
            children.extend(nodes)
            cost += node_cost
            deleted += node_deleted
        combined.append((tuple(children), cost, deleted))
        if len(combined) > limit:
            raise EvaluationError(
                f"semi-transformed closure exceeds {limit} child combinations "
                f"below {node.label!r}"
            )
    return combined


def apply_definition4(conjunct: ConjNode, costs: CostModel) -> CostModel:
    """Return a copy of ``costs`` with the local rule of Definition 4
    enforced syntactically: leaves whose parent has fewer than two leaf
    children get an infinite delete cost.

    The paper realizes this rule through the cost table (in the Section 6
    example the sole leaf ``"rachmaninov"`` simply has no finite delete
    cost); this helper automates that discipline.
    """
    blocked: list[ConjNode] = []

    def walk(node: ConjNode) -> None:
        leaf_children = [child for child in node.children if child.is_leaf]
        if len(leaf_children) < 2:
            blocked.extend(leaf_children)
        for child in node.children:
            walk(child)

    walk(conjunct)
    if not blocked:
        return costs
    adjusted = CostModel(default_insert_cost=costs.default_insert_cost)
    # copy the three tables wholesale, then block the identified leaves
    adjusted._insert.update(costs._insert)
    adjusted._delete.update(costs._delete)
    for key, value in costs._rename.items():
        adjusted._rename[key] = list(value)
    for leaf in blocked:
        adjusted._delete[(leaf.node_type, leaf.label)] = INFINITE
    return adjusted
