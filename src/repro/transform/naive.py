"""Naive reference evaluator for the approximate query-matching problem.

This evaluator follows the five-step *theoretical* evaluation of
Section 5.3 literally: it separates the query, enumerates every
semi-transformed query in the closure, searches all embeddings of each by
brute force (insertions are priced through the ancestor-descendant
distance, exactly like the engines), groups embeddings by root, and keeps
the lowest cost per root.

It is exponential in the query size and quadratic in the data size — the
whole point of Sections 6 and 7 is to avoid this — but on small inputs it
is *obviously correct*, which makes it the ground truth for the
equivalence tests of both production engines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..approxql.ast import NameSelector
from ..approxql.costs import CostModel
from ..approxql.parser import parse_query
from ..approxql.separated import ConjNode, separate
from ..xmltree.model import DataTree, NodeType
from .closure import DEFAULT_CLOSURE_LIMIT, semi_transformed_queries

INFINITE = math.inf


@dataclass(frozen=True)
class RootCostPair:
    """One result of the approximate query-matching problem
    (Definition 11): the embedding root and the lowest embedding cost."""

    root: int
    cost: float


class _Embedder:
    """Minimal-cost embedding of one conjunctive query tree into the data
    tree under ancestor-descendant semantics.

    ``min_cost(qnode, pre)`` is the cheapest embedding of the query
    subtree at ``qnode`` whose root maps to data node ``pre`` — the sum
    over query edges of the insertion distances, infinite if no embedding
    exists.  Memoized per (query node, data node); the key uses the
    query node's *structural* identity, which both survives garbage
    collection of variant trees and shares work between variants that
    contain identical subtrees.
    """

    def __init__(self, tree: DataTree) -> None:
        self._tree = tree
        self._memo: dict[tuple[ConjNode, int], float] = {}

    def min_cost(self, qnode: ConjNode, pre: int) -> float:
        tree = self._tree
        if tree.labels[pre] != qnode.label or tree.types[pre] != qnode.node_type:
            return INFINITE
        if not qnode.children:
            return 0.0
        key = (qnode, pre)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        total = 0.0
        for child in qnode.children:
            best = INFINITE
            for descendant in range(pre + 1, tree.bounds[pre] + 1):
                child_cost = self.min_cost(child, descendant)
                if child_cost == INFINITE:
                    continue
                candidate = tree.distance(pre, descendant) + child_cost
                if candidate < best:
                    best = candidate
            if best == INFINITE:
                total = INFINITE
                break
            total += best
        self._memo[key] = total
        return total


def evaluate_naive(
    query: "str | NameSelector",
    tree: DataTree,
    costs: CostModel,
    n: "int | None" = None,
    closure_limit: int = DEFAULT_CLOSURE_LIMIT,
) -> list[RootCostPair]:
    """Solve the approximate query-matching / best-n-pairs problem by
    explicit closure enumeration.

    Returns root-cost pairs sorted by (cost, root); when ``n`` is given,
    only the best ``n`` are returned (Definition 12).
    """
    if isinstance(query, str):
        query = parse_query(query)
    tree.encode_costs(costs.insert_cost, fingerprint=costs.insert_fingerprint)
    embedder = _Embedder(tree)
    candidates_by_label: dict[tuple[str, NodeType], list[int]] = {}
    for pre in range(len(tree)):
        candidates_by_label.setdefault((tree.labels[pre], tree.types[pre]), []).append(pre)

    best: dict[int, float] = {}
    for conjunct in separate(query):
        for variant in semi_transformed_queries(conjunct, costs, limit=closure_limit):
            if not variant.is_valid:
                continue
            root = variant.query
            for pre in candidates_by_label.get((root.label, root.node_type), ()):
                embed_cost = embedder.min_cost(root, pre)
                if embed_cost == INFINITE:
                    continue
                total = variant.cost + embed_cost
                if total < best.get(pre, INFINITE):
                    best[pre] = total
    pairs = sorted(
        (RootCostPair(pre, cost) for pre, cost in best.items()),
        key=lambda pair: (pair.cost, pair.root),
    )
    if n is not None:
        pairs = pairs[:n]
    return pairs
