"""Classic tree-edit distance, for contrast with the paper's semantics.

Section 2 relates approXQL's cost-based transformations to the tree-edit
distance of Tai [14] and its restricted variants, and argues that none of
the generic tree-similarity measures "has a semantics tailored to XML
data": edit distance treats all nodes alike, whereas approXQL
distinguishes the root (scope), inner nodes (context), and leaves
(information), forbids deleting the information-bearing leaves wholesale,
and prices insertions by *data* labels rather than query edits.

This module implements the standard **ordered** tree edit distance
(Zhang–Shasha) over :class:`~repro.approxql.separated.ConjNode` trees so
tests and examples can demonstrate the semantic differences concretely.
(The unordered variant the paper cites is MAX SNP-hard [2]; the ordered
one is the classic polynomial baseline.)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..approxql.separated import ConjNode


@dataclass(frozen=True)
class EditCosts:
    """Uniform operation costs of the classic edit distance.

    Unlike the paper's model, costs do not depend on which node is
    touched — that uniformity is precisely the §2 criticism.
    """

    insert: float = 1.0
    delete: float = 1.0
    relabel: float = 1.0


def tree_edit_distance(
    left: ConjNode, right: ConjNode, costs: "EditCosts | None" = None
) -> float:
    """Zhang–Shasha ordered tree edit distance between two trees."""
    costs = costs or EditCosts()
    left_info = _TreeInfo(left)
    right_info = _TreeInfo(right)
    distance = _Distance(left_info, right_info, costs)
    return distance.compute()


class _TreeInfo:
    """Postorder numbering, leftmost leaves, and keyroots of one tree."""

    def __init__(self, root: ConjNode) -> None:
        self.labels: list[tuple[str, int]] = []
        self.leftmost: list[int] = []
        self._postorder(root)
        self.keyroots = self._keyroots()

    def _postorder(self, root: ConjNode) -> None:
        def walk(node: ConjNode) -> tuple[int, int]:
            """Returns (postorder index, leftmost leaf index) of node."""
            first_leaf = None
            for child in node.children:
                _, child_leftmost = walk(child)
                if first_leaf is None:
                    first_leaf = child_leftmost
            index = len(self.labels)
            self.labels.append((node.label, int(node.node_type)))
            self.leftmost.append(first_leaf if first_leaf is not None else index)
            return index, self.leftmost[index]

        walk(root)

    def _keyroots(self) -> list[int]:
        seen: dict[int, int] = {}
        for index in range(len(self.labels)):
            seen[self.leftmost[index]] = index  # the last (highest) wins
        return sorted(seen.values())

    def __len__(self) -> int:
        return len(self.labels)


class _Distance:
    def __init__(self, left: _TreeInfo, right: _TreeInfo, costs: EditCosts) -> None:
        self._left = left
        self._right = right
        self._costs = costs
        self._tree_distance = [
            [0.0] * len(right) for _ in range(len(left))
        ]

    def compute(self) -> float:
        for left_root in self._left.keyroots:
            for right_root in self._right.keyroots:
                self._forest_distance(left_root, right_root)
        return self._tree_distance[len(self._left) - 1][len(self._right) - 1]

    def _forest_distance(self, left_root: int, right_root: int) -> None:
        costs = self._costs
        left_first = self._left.leftmost[left_root]
        right_first = self._right.leftmost[right_root]
        rows = left_root - left_first + 2
        cols = right_root - right_first + 2
        forest = [[0.0] * cols for _ in range(rows)]
        for i in range(1, rows):
            forest[i][0] = forest[i - 1][0] + costs.delete
        for j in range(1, cols):
            forest[0][j] = forest[0][j - 1] + costs.insert
        for i in range(1, rows):
            left_index = left_first + i - 1
            for j in range(1, cols):
                right_index = right_first + j - 1
                both_trees = (
                    self._left.leftmost[left_index] == left_first
                    and self._right.leftmost[right_index] == right_first
                )
                if both_trees:
                    relabel = (
                        0.0
                        if self._left.labels[left_index] == self._right.labels[right_index]
                        else costs.relabel
                    )
                    forest[i][j] = min(
                        forest[i - 1][j] + costs.delete,
                        forest[i][j - 1] + costs.insert,
                        forest[i - 1][j - 1] + relabel,
                    )
                    self._tree_distance[left_index][right_index] = forest[i][j]
                else:
                    partial_i = self._left.leftmost[left_index] - left_first
                    partial_j = self._right.leftmost[right_index] - right_first
                    forest[i][j] = min(
                        forest[i - 1][j] + costs.delete,
                        forest[i][j - 1] + costs.insert,
                        forest[partial_i][partial_j]
                        + self._tree_distance[left_index][right_index],
                    )
