"""The basic query transformations of Section 5.2, applied literally.

This module implements Definitions 2–5 as operations on conjunctive query
trees (:class:`~repro.approxql.separated.ConjNode`):

* :func:`insert_node` — replace an edge by a node (Definition 2);
* :func:`delete_inner` — remove a non-root inner node, reattaching its
  children (Definition 3);
* :func:`delete_leaf` — remove a leaf whose parent has at least two leaf
  children (Definition 4, the literal local rule);
* :func:`rename` — change a node's label (Definition 5).

Nodes are addressed by their preorder position in the query tree.  Each
operation returns a new tree (trees are immutable) together with the
transformation cost under a :class:`~repro.approxql.costs.CostModel`.

The evaluation engines do not enumerate transformations explicitly — they
use the expanded representation — but this module makes the formalism
executable: the naive reference evaluator builds on the same enumeration
rules, and tests validate the engines against it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..approxql.costs import CostModel
from ..approxql.separated import ConjNode
from ..errors import EvaluationError
from ..xmltree.model import NodeType


@dataclass(frozen=True)
class AppliedTransformation:
    """One applied basic transformation and its cost."""

    kind: str  # "insert" | "delete" | "rename"
    description: str
    cost: float


def preorder_nodes(query: ConjNode) -> list[ConjNode]:
    """All nodes of the query tree in preorder (position = index)."""
    nodes: list[ConjNode] = []

    def walk(node: ConjNode) -> None:
        nodes.append(node)
        for child in node.children:
            walk(child)

    walk(query)
    return nodes


def _rebuild(node: ConjNode, position: int, editor) -> tuple["ConjNode | None", int]:
    """Rebuild the tree, letting ``editor`` transform the node at
    ``position``.  ``editor(node)`` returns a replacement node, a tuple of
    replacement nodes (splice), or ``None`` (remove)."""
    counter = 0

    def walk(current: ConjNode):
        nonlocal counter
        my_position = counter
        counter += 1
        new_children: list[ConjNode] = []
        for child in current.children:
            result = walk(child)
            if result is None:
                continue
            if isinstance(result, tuple):
                new_children.extend(result)
            else:
                new_children.append(result)
        rebuilt = ConjNode(current.label, current.node_type, tuple(new_children))
        if my_position == position:
            return editor(rebuilt)
        return rebuilt

    result = walk(node)
    if isinstance(result, tuple):
        raise EvaluationError("cannot splice at the query root")
    return result, counter


def _node_at(query: ConjNode, position: int) -> ConjNode:
    nodes = preorder_nodes(query)
    if not 0 <= position < len(nodes):
        raise EvaluationError(f"no query node at preorder position {position}")
    return nodes[position]


def insert_node(
    query: ConjNode, child_position: int, label: str, costs: CostModel
) -> tuple[ConjNode, AppliedTransformation]:
    """Definition 2: replace the edge *into* the node at ``child_position``
    by a new struct node labeled ``label``.

    The definition forbids adding a new root or appending new leaves, so
    the target must not be the root (an insertion always has both an
    incoming and an outgoing edge).
    """
    if child_position == 0:
        raise EvaluationError("cannot insert above the query root (Definition 2)")
    target = _node_at(query, child_position)

    def editor(rebuilt: ConjNode) -> ConjNode:
        return ConjNode(label, NodeType.STRUCT, (rebuilt,))

    new_query, _ = _rebuild(query, child_position, editor)
    assert new_query is not None
    cost = costs.insert_cost(label)
    return new_query, AppliedTransformation(
        "insert", f"insert {label!r} above {target.label!r}", cost
    )


def delete_inner(
    query: ConjNode, position: int, costs: CostModel
) -> tuple[ConjNode, AppliedTransformation]:
    """Definition 3: remove a non-root inner node and connect its
    children to its parent."""
    if position == 0:
        raise EvaluationError("cannot delete the query root (Definition 3)")
    target = _node_at(query, position)
    if target.is_leaf:
        raise EvaluationError(f"{target.label!r} is a leaf; use delete_leaf (Definition 4)")

    def editor(rebuilt: ConjNode) -> tuple[ConjNode, ...]:
        return rebuilt.children

    new_query, _ = _rebuild(query, position, editor)
    assert new_query is not None
    cost = costs.delete_cost(target.label, target.node_type)
    return new_query, AppliedTransformation(
        "delete", f"delete inner node {target.label!r}", cost
    )


def delete_leaf(
    query: ConjNode, position: int, costs: CostModel
) -> tuple[ConjNode, AppliedTransformation]:
    """Definition 4: remove a leaf whose parent has two or more children
    (including it) that are leaves."""
    if position == 0:
        raise EvaluationError("cannot delete the query root")
    target = _node_at(query, position)
    if not target.is_leaf:
        raise EvaluationError(f"{target.label!r} is an inner node; use delete_inner")
    parent = _parent_of(query, position)
    leaf_siblings = sum(1 for child in parent.children if child.is_leaf)
    if leaf_siblings < 2:
        raise EvaluationError(
            f"leaf {target.label!r} is not deletable: its parent has only "
            f"{leaf_siblings} leaf child(ren) (Definition 4)"
        )

    def editor(rebuilt: ConjNode) -> None:
        return None

    new_query, _ = _rebuild(query, position, editor)
    assert new_query is not None
    cost = costs.delete_cost(target.label, target.node_type)
    return new_query, AppliedTransformation("delete", f"delete leaf {target.label!r}", cost)


def rename(
    query: ConjNode, position: int, new_label: str, costs: CostModel
) -> tuple[ConjNode, AppliedTransformation]:
    """Definition 5: change the label of a node."""
    target = _node_at(query, position)

    def editor(rebuilt: ConjNode) -> ConjNode:
        return ConjNode(new_label, rebuilt.node_type, rebuilt.children)

    new_query, _ = _rebuild(query, position, editor)
    assert new_query is not None
    cost = costs.rename_cost(target.label, new_label, target.node_type)
    return new_query, AppliedTransformation(
        "rename", f"rename {target.label!r} to {new_label!r}", cost
    )


def _parent_of(query: ConjNode, position: int) -> ConjNode:
    counter = 0
    found: list[ConjNode] = []

    def walk(node: ConjNode, parent: "ConjNode | None") -> None:
        nonlocal counter
        if counter == position:
            if parent is None:
                raise EvaluationError("the root has no parent")
            found.append(parent)
        counter += 1
        for child in node.children:
            walk(child, node)

    walk(query, None)
    if not found:
        raise EvaluationError(f"no query node at preorder position {position}")
    return found[0]
