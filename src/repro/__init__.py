"""Reproduction of Schlieder, "Schema-Driven Evaluation of Approximate
Tree-Pattern Queries" (EDBT 2002).

The package implements the approXQL query language and both evaluation
strategies of the paper — the *direct* algorithm (``primary`` over
pre/bound-encoded inverted indexes with pruning) and the *schema-driven*
pipeline (top-k ``primary`` over a DataGuide-style schema, ``secondary``
execution of second-level queries, incremental best-n retrieval) — plus
every substrate they need: an embedded key-value storage engine, an XML
parser and data-tree model, synthetic data and query generators, and a
benchmark harness that regenerates the paper's Figure 7.

Quickstart::

    from repro import Database

    db = Database.from_xml('''
        <catalog>
          <cd><title>piano concerto</title><composer>rachmaninov</composer></cd>
          <cd><title>cello sonata</title><composer>chopin</composer></cd>
        </catalog>
    ''')
    for result in db.query('cd[title["piano"]]', n=5):
        print(result.cost, result.outline())
"""

from .approxql import CostModel, parse_query
from .errors import (
    AdmissionError,
    CostModelError,
    EvaluationError,
    GenerationError,
    QuerySyntaxError,
    ReproError,
    SchemaError,
    ServerError,
    ShardError,
    StorageError,
    XMLSyntaxError,
)
from .xmltree import DataTree, NodeType, tree_from_xml

__version__ = "1.0.0"

__all__ = [
    "AdmissionError",
    "CostModel",
    "CostModelError",
    "DataTree",
    "Database",
    "EvaluationError",
    "GenerationError",
    "NodeType",
    "QueryPlan",
    "QueryPool",
    "QueryReport",
    "QueryResult",
    "QueryServer",
    "QuerySyntaxError",
    "ReproError",
    "ResultSet",
    "ResultStream",
    "SchemaError",
    "ServeClient",
    "ServerError",
    "ServerThread",
    "ShardError",
    "ShardedDatabase",
    "StorageError",
    "Telemetry",
    "XMLSyntaxError",
    "__version__",
    "parse_query",
    "resolve_jobs",
    "tree_from_xml",
]

_LAZY = {
    "Database": "core",
    "QueryPlan": "core",
    "QueryResult": "core",
    "ResultSet": "core",
    "ResultStream": "core",
    "QueryReport": "telemetry",
    "Telemetry": "telemetry",
    "QueryPool": "concurrent",
    "resolve_jobs": "concurrent",
    "ShardedDatabase": "shard",
    "QueryServer": "server",
    "ServerThread": "server",
    "ServeClient": "server",
}


def __getattr__(name: str):
    """Lazily import the heavyweight façade so that using one substrate
    does not pull in the whole engine."""
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    return getattr(module, name)
