"""The data-tree model of Section 4 with the encoding of Section 6.2.

A :class:`DataTree` is the labeled tree built from a collection of XML
documents: ``struct`` nodes for elements and attribute names, ``text``
leaf nodes for individual words of element text and attribute values, and
one artificial super-root (label ``#root``) above all document roots.

The tree is stored in **columnar preorder form**: node *pre* numbers index
parallel arrays (label, type, parent, bound, inscost, pathcost).  This
keeps million-node collections affordable in CPython and makes the
pre/bound interval encoding of the paper the native representation rather
than an afterthought.
"""

from __future__ import annotations

import enum
import re
from collections.abc import Callable, Iterator

from ..errors import EvaluationError, ReproError

ROOT_LABEL = "#root"

# Unicode letters and digits (underscore excluded): matches accented
# Latin, Cyrillic, CJK, ... — anything \w considers a word character.
_WORD_PATTERN = re.compile(r"[^\W_]+", re.UNICODE)


class NodeType(enum.IntEnum):
    """The two node types of the model (Section 4)."""

    STRUCT = 0
    TEXT = 1


def tokenize(text: str) -> list[str]:
    """Split a text sequence into lowercase words (Section 4).

    Words are maximal runs of Unicode letters and digits; everything
    else (punctuation, underscores, whitespace) separates words.
    """
    return [match.group(0).lower() for match in _WORD_PATTERN.finditer(text)]


class DataTree:
    """Columnar labeled tree with the (pre, bound, inscost, pathcost)
    encoding of Section 6.2.

    Instances are produced by :class:`TreeBuilder` (or the convenience
    constructors in :mod:`repro.xmltree.builder`); the arrays are read-only
    by convention once building finishes.

    **Mutation** happens at document granularity and preserves every
    existing pre number: :meth:`graft_document` appends a new document's
    nodes at the tail (only the super-root's bound changes among existing
    nodes), and :meth:`mark_dead` tombstones a document root without
    touching the arrays — the interval test and the distance formula keep
    working for every surviving node because holes in the preorder never
    invalidate them.  :func:`compact_tree` squeezes the holes back out
    when a store is rewritten from scratch.
    """

    __slots__ = (
        "labels",
        "types",
        "parents",
        "bounds",
        "inscosts",
        "pathcosts",
        "dead_roots",
        "_first_child",
        "_next_sibling",
        "_insert_cost_fingerprint",
    )

    def __init__(self) -> None:
        self.labels: list[str] = []
        self.types: list[NodeType] = []
        self.parents: list[int] = []
        self.bounds: list[int] = []
        self.inscosts: list[float] = []
        self.pathcosts: list[float] = []
        #: document roots removed by :meth:`mark_dead`; their subtrees stay
        #: in the arrays as tombstones until :func:`compact_tree`
        self.dead_roots: set[int] = set()
        self._first_child: list[int] = []
        self._next_sibling: list[int] = []
        self._insert_cost_fingerprint: object = None

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.labels)

    @property
    def root(self) -> int:
        """Pre number of the super-root."""
        return 0

    def label(self, pre: int) -> str:
        """Label of the node at preorder number ``pre``."""
        return self.labels[pre]

    def node_type(self, pre: int) -> NodeType:
        """Node type (struct or text) of ``pre``."""
        return self.types[pre]

    def parent(self, pre: int) -> int:
        """Parent pre number (-1 for the super-root)."""
        return self.parents[pre]

    def bound(self, pre: int) -> int:
        """Largest pre number inside the subtree rooted at ``pre``."""
        return self.bounds[pre]

    def children(self, pre: int) -> list[int]:
        """Pre numbers of the children of ``pre`` in document order."""
        result = []
        child = self._first_child[pre]
        while child != -1:
            result.append(child)
            child = self._next_sibling[child]
        return result

    def subtree(self, pre: int) -> range:
        """All pre numbers in the subtree rooted at ``pre`` (inclusive)."""
        return range(pre, self.bounds[pre] + 1)

    def depth(self, pre: int) -> int:
        """Number of edges from the super-root to ``pre``."""
        depth = 0
        while self.parents[pre] != -1:
            pre = self.parents[pre]
            depth += 1
        return depth

    def is_leaf(self, pre: int) -> bool:
        """Whether ``pre`` has no children."""
        return self._first_child[pre] == -1

    # ------------------------------------------------------------------
    # the Section 6.2 encoding
    # ------------------------------------------------------------------

    def is_ancestor(self, ancestor: int, descendant: int) -> bool:
        """The paper's interval test: ``pre(u) < pre(v) and bound(u) >= pre(v)``."""
        return ancestor < descendant and self.bounds[ancestor] >= descendant

    def distance(self, ancestor: int, descendant: int) -> float:
        """Sum of the insert costs of the nodes strictly between the two.

        ``distance(u, v) = pathcost(v) - pathcost(u) - inscost(u)``.
        """
        if not self.is_ancestor(ancestor, descendant):
            raise EvaluationError(
                f"distance undefined: {ancestor} is not an ancestor of {descendant}"
            )
        return self.pathcosts[descendant] - self.pathcosts[ancestor] - self.inscosts[ancestor]

    def encode_costs(
        self, insert_cost_of: Callable[[str], float], fingerprint: object = None
    ) -> None:
        """(Re)compute ``inscost``/``pathcost`` for every node.

        ``insert_cost_of(label)`` supplies the cost of inserting a struct
        node with that label into a query.  Text nodes are leaves and can
        never be inserted, so their inscost is 0 by convention.

        ``fingerprint`` lets callers skip redundant re-encodings: when it
        equals the fingerprint of the previous call, nothing happens.
        """
        if fingerprint is not None and fingerprint == self._insert_cost_fingerprint:
            return
        labels = self.labels
        types = self.types
        parents = self.parents
        inscosts = self.inscosts
        pathcosts = self.pathcosts
        cache: dict[str, float] = {}
        for pre in range(len(labels)):
            if types[pre] == NodeType.TEXT:
                cost = 0.0
            else:
                label = labels[pre]
                cost = cache.get(label)
                if cost is None:
                    cost = insert_cost_of(label)
                    if cost < 0:
                        raise ReproError(f"negative insert cost for label {label!r}")
                    cache[label] = cost
            inscosts[pre] = cost
            parent = parents[pre]
            if parent == -1:
                pathcosts[pre] = 0.0
            else:
                pathcosts[pre] = pathcosts[parent] + inscosts[parent]
        self._insert_cost_fingerprint = fingerprint

    @property
    def insert_cost_fingerprint(self) -> object:
        """Fingerprint of the insert-cost table the encoding reflects."""
        return self._insert_cost_fingerprint

    # ------------------------------------------------------------------
    # traversal / inspection helpers
    # ------------------------------------------------------------------

    def iter_nodes(self) -> Iterator[int]:
        """All preorder numbers, in order."""
        return iter(range(len(self.labels)))

    def document_roots(self) -> list[int]:
        """Pre numbers of the roots of the *live* documents (tombstoned
        documents are excluded; see :meth:`mark_dead`)."""
        roots = self.children(self.root)
        if not self.dead_roots:
            return roots
        dead = self.dead_roots
        return [root for root in roots if root not in dead]

    # ------------------------------------------------------------------
    # document-level mutation
    # ------------------------------------------------------------------

    def graft_document(
        self, document: "DataTree", insert_cost_of: Callable[[str], float]
    ) -> int:
        """Append another tree's single document at the tail of this one.

        ``document`` must hold exactly one document (as built by
        :func:`~repro.xmltree.builder.tree_from_xml` from one XML string).
        Its nodes receive the next ``len(document) - 1`` pre numbers, so
        no existing node is renumbered and every existing bound except
        the super-root's is untouched — the append is invisible to any
        reader holding the old node count.  ``insert_cost_of`` must be
        the cost table of the current encoding so path costs stay
        telescoped; returns the grafted document's root pre.
        """
        roots = document.children(0)
        if len(roots) != 1:
            raise ReproError(
                f"graft_document needs exactly one document, got {len(roots)}"
            )
        offset = len(self.labels) - 1  # document pre i >= 1 maps to offset + i
        root_pre = offset + 1
        cache: dict[str, float] = {}
        for pre in range(1, len(document.labels)):
            new_pre = offset + pre
            label = document.labels[pre]
            node_type = document.types[pre]
            parent = document.parents[pre]
            new_parent = 0 if parent == 0 else offset + parent
            if node_type == NodeType.TEXT:
                cost = 0.0
            else:
                cost = cache.get(label)
                if cost is None:
                    cost = insert_cost_of(label)
                    if cost < 0:
                        raise ReproError(f"negative insert cost for label {label!r}")
                    cache[label] = cost
            self.labels.append(label)
            self.types.append(node_type)
            self.parents.append(new_parent)
            self.bounds.append(offset + document.bounds[pre])
            self.inscosts.append(cost)
            self.pathcosts.append(
                self.pathcosts[new_parent] + self.inscosts[new_parent]
            )
            first = document._first_child[pre]
            self._first_child.append(-1 if first == -1 else offset + first)
            if pre == 1:
                self._next_sibling.append(-1)
            else:
                sibling = document._next_sibling[pre]
                self._next_sibling.append(-1 if sibling == -1 else offset + sibling)
        # link the new root as the last child of the super-root
        last = self._first_child[0]
        if last == -1:
            self._first_child[0] = root_pre
        else:
            while self._next_sibling[last] != -1:
                last = self._next_sibling[last]
            self._next_sibling[last] = root_pre
        self.bounds[0] = len(self.labels) - 1
        return root_pre

    def ungraft(self, start: int) -> None:
        """Roll back the most recent :meth:`graft_document` (whose root
        landed at ``start``): truncate the arrays and unlink the root
        from the super-root's child chain.  Only valid while the grafted
        document is still the tail of the tree — the mutation layer uses
        this to leave the in-memory tree untouched when an index write
        fails midway."""
        if start <= 0 or start >= len(self.labels) or self.parents[start] != 0:
            raise ReproError(f"pre {start} is not a graft boundary")
        del self.labels[start:]
        del self.types[start:]
        del self.parents[start:]
        del self.bounds[start:]
        del self.inscosts[start:]
        del self.pathcosts[start:]
        del self._first_child[start:]
        del self._next_sibling[start:]
        child = self._first_child[0]
        if child == start:
            self._first_child[0] = -1
        else:
            while child != -1 and self._next_sibling[child] != start:
                child = self._next_sibling[child]
            if child != -1:
                self._next_sibling[child] = -1
        self.bounds[0] = start - 1

    def mark_dead(self, root: int) -> None:
        """Tombstone the document rooted at ``root``.

        The document's nodes stay in the arrays (holes in the preorder
        never break the interval test or the distance formula for the
        survivors) but vanish from :meth:`document_roots` and from every
        index and schema instance list maintained above the tree.
        """
        if root <= 0 or root >= len(self.labels) or self.parents[root] != 0:
            raise ReproError(f"pre {root} is not a document root")
        if root in self.dead_roots:
            raise ReproError(f"document at pre {root} was already removed")
        self.dead_roots.add(root)

    def is_live(self, pre: int) -> bool:
        """Whether ``pre`` belongs to a live document (the super-root is
        always live)."""
        for root in self.dead_roots:
            if root <= pre <= self.bounds[root]:
                return False
        return True

    def live_flags(self) -> list[bool]:
        """Per-node liveness as a flat list (index = pre number)."""
        flags = [True] * len(self.labels)
        for root in self.dead_roots:
            for pre in range(root, self.bounds[root] + 1):
                flags[pre] = False
        return flags

    @property
    def live_node_count(self) -> int:
        """Number of nodes in live documents, super-root included."""
        dead = sum(self.bounds[root] - root + 1 for root in self.dead_roots)
        return len(self.labels) - dead

    def rebuild_links(self) -> None:
        """Recompute the first-child/next-sibling navigation arrays from
        the parent column (used after bulk array surgery)."""
        count = len(self.labels)
        self._first_child = [-1] * count
        self._next_sibling = [-1] * count
        last_child: dict[int, int] = {}
        for pre in range(1, count):
            parent = self.parents[pre]
            previous = last_child.get(parent, -1)
            if previous == -1:
                self._first_child[parent] = pre
            else:
                self._next_sibling[previous] = pre
            last_child[parent] = pre

    def label_type_path(self, pre: int) -> tuple[tuple[str, NodeType], ...]:
        """The label-type path from the super-root down to ``pre``
        (Definition 13), excluding the super-root itself."""
        path = []
        while self.parents[pre] != -1:
            path.append((self.labels[pre], self.types[pre]))
            pre = self.parents[pre]
        return tuple(reversed(path))

    def format_subtree(self, pre: int = 0, max_depth: int = 10) -> str:
        """Render a subtree as an indented outline (for examples/debugging)."""
        lines: list[str] = []
        self._format(pre, 0, max_depth, lines)
        return "\n".join(lines)

    def _format(self, pre: int, depth: int, max_depth: int, lines: list[str]) -> None:
        kind = "text" if self.types[pre] == NodeType.TEXT else "struct"
        lines.append(f"{'  ' * depth}{self.labels[pre]} [{kind} pre={pre} bound={self.bounds[pre]}]")
        if depth >= max_depth:
            return
        for child in self.children(pre):
            self._format(child, depth + 1, max_depth, lines)


class TreeBuilder:
    """Incremental preorder construction of a :class:`DataTree`.

    Usage::

        builder = TreeBuilder()
        builder.start_struct("cd")
        builder.start_struct("title")
        builder.add_word("piano")
        builder.add_word("concerto")
        builder.end_struct()
        builder.end_struct()
        tree = builder.finish()

    The super-root is created implicitly; every ``start_struct`` at depth
    zero starts a new document under it.
    """

    def __init__(self) -> None:
        self._tree = DataTree()
        self._stack: list[int] = []
        self._last_child_of: dict[int, int] = {}
        self._finished = False
        self._append(ROOT_LABEL, NodeType.STRUCT, parent=-1)
        self._stack.append(0)

    def _append(self, label: str, node_type: NodeType, parent: int) -> int:
        tree = self._tree
        pre = len(tree.labels)
        tree.labels.append(label)
        tree.types.append(node_type)
        tree.parents.append(parent)
        tree.bounds.append(pre)
        tree.inscosts.append(0.0)
        tree.pathcosts.append(0.0)
        tree._first_child.append(-1)
        tree._next_sibling.append(-1)
        if parent != -1:
            previous = self._last_child_of.get(parent, -1)
            if previous == -1:
                tree._first_child[parent] = pre
            else:
                tree._next_sibling[previous] = pre
            self._last_child_of[parent] = pre
        return pre

    def start_struct(self, label: str) -> int:
        """Open a struct node; returns its pre number."""
        self._check_building()
        if not label:
            raise ReproError("struct nodes need a non-empty label")
        pre = self._append(label, NodeType.STRUCT, parent=self._stack[-1])
        self._stack.append(pre)
        return pre

    def add_word(self, word: str) -> int:
        """Add one text leaf under the current struct node."""
        self._check_building()
        if len(self._stack) < 2:
            raise ReproError("text must appear inside a document element")
        if not word:
            raise ReproError("text nodes need a non-empty label")
        return self._append(word, NodeType.TEXT, parent=self._stack[-1])

    def add_text(self, text: str) -> list[int]:
        """Tokenize ``text`` and add one leaf per word."""
        return [self.add_word(word) for word in tokenize(text)]

    def end_struct(self) -> None:
        """Close the current struct node and fix its bound."""
        self._check_building()
        if len(self._stack) < 2:
            raise ReproError("end_struct without matching start_struct")
        pre = self._stack.pop()
        self._tree.bounds[pre] = len(self._tree.labels) - 1

    def finish(self) -> DataTree:
        """Close the super-root and return the finished tree."""
        self._check_building()
        if len(self._stack) != 1:
            raise ReproError(f"{len(self._stack) - 1} unclosed struct node(s) at finish()")
        self._tree.bounds[0] = len(self._tree.labels) - 1
        self._finished = True
        # default encoding: every insertion costs 1 (the paper's default);
        # the fingerprint matches CostModel().insert_fingerprint so a
        # default cost model never triggers a redundant re-encode
        self._tree.encode_costs(lambda label: 1.0, fingerprint=(1.0, ()))
        return self._tree

    def _check_building(self) -> None:
        if self._finished:
            raise ReproError("builder already finished")


def extract_document(tree: DataTree, root: int) -> DataTree:
    """Copy the document rooted at ``root`` into a standalone tree — a
    fresh super-root with the document as its only child, exactly the
    shape :func:`~repro.xmltree.builder.tree_from_xml` produces and
    :meth:`DataTree.graft_document` consumes.

    This is how a collection is re-partitioned without round-tripping
    through XML: the sharding layer splits a built tree document by
    document and grafts each copy into the owning shard's tree, so the
    per-document preorder (and therefore every per-document query
    answer) is preserved bit for bit.
    """
    if root <= 0 or root >= len(tree.labels) or tree.parents[root] != 0:
        raise ReproError(f"pre {root} is not a document root")
    out = DataTree()
    bound = tree.bounds[root]
    offset = root - 1  # original pre p maps to p - offset; the root lands at 1
    out.labels.append(ROOT_LABEL)
    out.types.append(NodeType.STRUCT)
    out.parents.append(-1)
    out.bounds.append(bound - offset)
    out.inscosts.append(0.0)
    out.pathcosts.append(0.0)
    for pre in range(root, bound + 1):
        out.labels.append(tree.labels[pre])
        out.types.append(tree.types[pre])
        parent = tree.parents[pre]
        out.parents.append(0 if parent == 0 else parent - offset)
        out.bounds.append(tree.bounds[pre] - offset)
        # grafting re-derives both cost columns from the target tree's
        # insert-cost table; zeros keep the copy honest until then
        out.inscosts.append(0.0)
        out.pathcosts.append(0.0)
    out.rebuild_links()
    return out


def compact_tree(tree: DataTree) -> DataTree:
    """Return a dense copy of ``tree`` with every tombstoned document
    squeezed out (the original is returned unchanged when there are no
    tombstones).

    Dead documents are whole subtrees, so every live node's subtree is
    entirely live and the renumbering is a single order-preserving pass:
    old bounds map position-for-position, parents through the same map.
    The insert-cost fingerprint is carried over because per-node costs are
    copied verbatim.
    """
    if not tree.dead_roots:
        return tree
    flags = tree.live_flags()
    new_of = [-1] * len(tree.labels)
    count = 0
    for pre, live in enumerate(flags):
        if live:
            new_of[pre] = count
            count += 1
    out = DataTree()
    for pre, live in enumerate(flags):
        if not live:
            continue
        out.labels.append(tree.labels[pre])
        out.types.append(tree.types[pre])
        parent = tree.parents[pre]
        out.parents.append(-1 if parent == -1 else new_of[parent])
        out.bounds.append(new_of[tree.bounds[pre]] if pre else 0)
        out.inscosts.append(tree.inscosts[pre])
        out.pathcosts.append(tree.pathcosts[pre])
    out.bounds[0] = count - 1
    out.rebuild_links()
    out._insert_cost_fingerprint = tree._insert_cost_fingerprint
    return out
