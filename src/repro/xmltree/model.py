"""The data-tree model of Section 4 with the encoding of Section 6.2.

A :class:`DataTree` is the labeled tree built from a collection of XML
documents: ``struct`` nodes for elements and attribute names, ``text``
leaf nodes for individual words of element text and attribute values, and
one artificial super-root (label ``#root``) above all document roots.

The tree is stored in **columnar preorder form**: node *pre* numbers index
parallel arrays (label, type, parent, bound, inscost, pathcost).  This
keeps million-node collections affordable in CPython and makes the
pre/bound interval encoding of the paper the native representation rather
than an afterthought.
"""

from __future__ import annotations

import enum
import re
from collections.abc import Callable, Iterator

from ..errors import EvaluationError, ReproError

ROOT_LABEL = "#root"

# Unicode letters and digits (underscore excluded): matches accented
# Latin, Cyrillic, CJK, ... — anything \w considers a word character.
_WORD_PATTERN = re.compile(r"[^\W_]+", re.UNICODE)


class NodeType(enum.IntEnum):
    """The two node types of the model (Section 4)."""

    STRUCT = 0
    TEXT = 1


def tokenize(text: str) -> list[str]:
    """Split a text sequence into lowercase words (Section 4).

    Words are maximal runs of Unicode letters and digits; everything
    else (punctuation, underscores, whitespace) separates words.
    """
    return [match.group(0).lower() for match in _WORD_PATTERN.finditer(text)]


class DataTree:
    """Columnar labeled tree with the (pre, bound, inscost, pathcost)
    encoding of Section 6.2.

    Instances are produced by :class:`TreeBuilder` (or the convenience
    constructors in :mod:`repro.xmltree.builder`); the arrays are read-only
    by convention once building finishes.
    """

    __slots__ = (
        "labels",
        "types",
        "parents",
        "bounds",
        "inscosts",
        "pathcosts",
        "_first_child",
        "_next_sibling",
        "_insert_cost_fingerprint",
    )

    def __init__(self) -> None:
        self.labels: list[str] = []
        self.types: list[NodeType] = []
        self.parents: list[int] = []
        self.bounds: list[int] = []
        self.inscosts: list[float] = []
        self.pathcosts: list[float] = []
        self._first_child: list[int] = []
        self._next_sibling: list[int] = []
        self._insert_cost_fingerprint: object = None

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.labels)

    @property
    def root(self) -> int:
        """Pre number of the super-root."""
        return 0

    def label(self, pre: int) -> str:
        """Label of the node at preorder number ``pre``."""
        return self.labels[pre]

    def node_type(self, pre: int) -> NodeType:
        """Node type (struct or text) of ``pre``."""
        return self.types[pre]

    def parent(self, pre: int) -> int:
        """Parent pre number (-1 for the super-root)."""
        return self.parents[pre]

    def bound(self, pre: int) -> int:
        """Largest pre number inside the subtree rooted at ``pre``."""
        return self.bounds[pre]

    def children(self, pre: int) -> list[int]:
        """Pre numbers of the children of ``pre`` in document order."""
        result = []
        child = self._first_child[pre]
        while child != -1:
            result.append(child)
            child = self._next_sibling[child]
        return result

    def subtree(self, pre: int) -> range:
        """All pre numbers in the subtree rooted at ``pre`` (inclusive)."""
        return range(pre, self.bounds[pre] + 1)

    def depth(self, pre: int) -> int:
        """Number of edges from the super-root to ``pre``."""
        depth = 0
        while self.parents[pre] != -1:
            pre = self.parents[pre]
            depth += 1
        return depth

    def is_leaf(self, pre: int) -> bool:
        """Whether ``pre`` has no children."""
        return self._first_child[pre] == -1

    # ------------------------------------------------------------------
    # the Section 6.2 encoding
    # ------------------------------------------------------------------

    def is_ancestor(self, ancestor: int, descendant: int) -> bool:
        """The paper's interval test: ``pre(u) < pre(v) and bound(u) >= pre(v)``."""
        return ancestor < descendant and self.bounds[ancestor] >= descendant

    def distance(self, ancestor: int, descendant: int) -> float:
        """Sum of the insert costs of the nodes strictly between the two.

        ``distance(u, v) = pathcost(v) - pathcost(u) - inscost(u)``.
        """
        if not self.is_ancestor(ancestor, descendant):
            raise EvaluationError(
                f"distance undefined: {ancestor} is not an ancestor of {descendant}"
            )
        return self.pathcosts[descendant] - self.pathcosts[ancestor] - self.inscosts[ancestor]

    def encode_costs(
        self, insert_cost_of: Callable[[str], float], fingerprint: object = None
    ) -> None:
        """(Re)compute ``inscost``/``pathcost`` for every node.

        ``insert_cost_of(label)`` supplies the cost of inserting a struct
        node with that label into a query.  Text nodes are leaves and can
        never be inserted, so their inscost is 0 by convention.

        ``fingerprint`` lets callers skip redundant re-encodings: when it
        equals the fingerprint of the previous call, nothing happens.
        """
        if fingerprint is not None and fingerprint == self._insert_cost_fingerprint:
            return
        labels = self.labels
        types = self.types
        parents = self.parents
        inscosts = self.inscosts
        pathcosts = self.pathcosts
        cache: dict[str, float] = {}
        for pre in range(len(labels)):
            if types[pre] == NodeType.TEXT:
                cost = 0.0
            else:
                label = labels[pre]
                cost = cache.get(label)
                if cost is None:
                    cost = insert_cost_of(label)
                    if cost < 0:
                        raise ReproError(f"negative insert cost for label {label!r}")
                    cache[label] = cost
            inscosts[pre] = cost
            parent = parents[pre]
            if parent == -1:
                pathcosts[pre] = 0.0
            else:
                pathcosts[pre] = pathcosts[parent] + inscosts[parent]
        self._insert_cost_fingerprint = fingerprint

    @property
    def insert_cost_fingerprint(self) -> object:
        """Fingerprint of the insert-cost table the encoding reflects."""
        return self._insert_cost_fingerprint

    # ------------------------------------------------------------------
    # traversal / inspection helpers
    # ------------------------------------------------------------------

    def iter_nodes(self) -> Iterator[int]:
        """All preorder numbers, in order."""
        return iter(range(len(self.labels)))

    def document_roots(self) -> list[int]:
        """Pre numbers of the roots of the individual documents."""
        return self.children(self.root)

    def label_type_path(self, pre: int) -> tuple[tuple[str, NodeType], ...]:
        """The label-type path from the super-root down to ``pre``
        (Definition 13), excluding the super-root itself."""
        path = []
        while self.parents[pre] != -1:
            path.append((self.labels[pre], self.types[pre]))
            pre = self.parents[pre]
        return tuple(reversed(path))

    def format_subtree(self, pre: int = 0, max_depth: int = 10) -> str:
        """Render a subtree as an indented outline (for examples/debugging)."""
        lines: list[str] = []
        self._format(pre, 0, max_depth, lines)
        return "\n".join(lines)

    def _format(self, pre: int, depth: int, max_depth: int, lines: list[str]) -> None:
        kind = "text" if self.types[pre] == NodeType.TEXT else "struct"
        lines.append(f"{'  ' * depth}{self.labels[pre]} [{kind} pre={pre} bound={self.bounds[pre]}]")
        if depth >= max_depth:
            return
        for child in self.children(pre):
            self._format(child, depth + 1, max_depth, lines)


class TreeBuilder:
    """Incremental preorder construction of a :class:`DataTree`.

    Usage::

        builder = TreeBuilder()
        builder.start_struct("cd")
        builder.start_struct("title")
        builder.add_word("piano")
        builder.add_word("concerto")
        builder.end_struct()
        builder.end_struct()
        tree = builder.finish()

    The super-root is created implicitly; every ``start_struct`` at depth
    zero starts a new document under it.
    """

    def __init__(self) -> None:
        self._tree = DataTree()
        self._stack: list[int] = []
        self._last_child_of: dict[int, int] = {}
        self._finished = False
        self._append(ROOT_LABEL, NodeType.STRUCT, parent=-1)
        self._stack.append(0)

    def _append(self, label: str, node_type: NodeType, parent: int) -> int:
        tree = self._tree
        pre = len(tree.labels)
        tree.labels.append(label)
        tree.types.append(node_type)
        tree.parents.append(parent)
        tree.bounds.append(pre)
        tree.inscosts.append(0.0)
        tree.pathcosts.append(0.0)
        tree._first_child.append(-1)
        tree._next_sibling.append(-1)
        if parent != -1:
            previous = self._last_child_of.get(parent, -1)
            if previous == -1:
                tree._first_child[parent] = pre
            else:
                tree._next_sibling[previous] = pre
            self._last_child_of[parent] = pre
        return pre

    def start_struct(self, label: str) -> int:
        """Open a struct node; returns its pre number."""
        self._check_building()
        if not label:
            raise ReproError("struct nodes need a non-empty label")
        pre = self._append(label, NodeType.STRUCT, parent=self._stack[-1])
        self._stack.append(pre)
        return pre

    def add_word(self, word: str) -> int:
        """Add one text leaf under the current struct node."""
        self._check_building()
        if len(self._stack) < 2:
            raise ReproError("text must appear inside a document element")
        if not word:
            raise ReproError("text nodes need a non-empty label")
        return self._append(word, NodeType.TEXT, parent=self._stack[-1])

    def add_text(self, text: str) -> list[int]:
        """Tokenize ``text`` and add one leaf per word."""
        return [self.add_word(word) for word in tokenize(text)]

    def end_struct(self) -> None:
        """Close the current struct node and fix its bound."""
        self._check_building()
        if len(self._stack) < 2:
            raise ReproError("end_struct without matching start_struct")
        pre = self._stack.pop()
        self._tree.bounds[pre] = len(self._tree.labels) - 1

    def finish(self) -> DataTree:
        """Close the super-root and return the finished tree."""
        self._check_building()
        if len(self._stack) != 1:
            raise ReproError(f"{len(self._stack) - 1} unclosed struct node(s) at finish()")
        self._tree.bounds[0] = len(self._tree.labels) - 1
        self._finished = True
        # default encoding: every insertion costs 1 (the paper's default);
        # the fingerprint matches CostModel().insert_fingerprint so a
        # default cost model never triggers a redundant re-encode
        self._tree.encode_costs(lambda label: 1.0, fingerprint=(1.0, ()))
        return self._tree

    def _check_building(self) -> None:
        if self._finished:
            raise ReproError("builder already finished")
