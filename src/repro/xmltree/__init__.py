"""XML substrate: parser, document model, data tree, encoding, indexes.

This package implements Sections 4 and 6.2 of the paper: XML documents
are normalized into one labeled *data tree* of ``struct`` and ``text``
nodes, each node carries the ``(pre, bound, inscost, pathcost)`` encoding,
and the inverted indexes ``I_struct`` / ``I_text`` map labels to postings.
"""

from .builder import BuildOptions, CollectionBuilder, tree_from_xml
from .indexes import MemoryNodeIndexes, NodeIndexes, StoredNodeIndexes
from .model import ROOT_LABEL, DataTree, NodeType, TreeBuilder, compact_tree, tokenize
from .parser import XMLElement, parse_document, parse_fragment
from .serialize import collection_to_xml, escape_text, subtree_to_xml
from .stats import CollectionStatistics, collect_statistics
from .validate import validate_tree

__all__ = [
    "ROOT_LABEL",
    "BuildOptions",
    "CollectionBuilder",
    "DataTree",
    "MemoryNodeIndexes",
    "NodeIndexes",
    "NodeType",
    "StoredNodeIndexes",
    "TreeBuilder",
    "CollectionStatistics",
    "XMLElement",
    "collect_statistics",
    "collection_to_xml",
    "compact_tree",
    "escape_text",
    "parse_document",
    "parse_fragment",
    "subtree_to_xml",
    "tokenize",
    "tree_from_xml",
    "validate_tree",
]
