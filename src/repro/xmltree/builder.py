"""Construction of data trees from XML documents (Section 4).

The mapping rules of the paper:

* an element becomes a ``struct`` node labeled with the element name;
* element text is split into words, one ``text`` leaf per word;
* an attribute becomes two nodes in parent-child relationship — a
  ``struct`` node labeled with the attribute name and ``text`` leaves for
  its value (values are word-split like element text, so the paper's
  promise that "text selectors match both text data and attribute values"
  holds for multi-word values too);
* a super-root with a unique label joins the roots of all documents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable
from xml.etree import ElementTree

from ..errors import ReproError
from .model import DataTree, TreeBuilder, tokenize
from .parser import XMLElement, parse_document, parse_fragment


@dataclass(frozen=True)
class BuildOptions:
    """Knobs for the XML-to-data-tree mapping.

    ``include_attributes``
        Map attributes per the paper (default) or skip them entirely.
    ``split_attribute_values``
        Word-split attribute values (default) or keep each value as one
        text leaf (the strictest reading of the paper's "the attribute
        value forms the label of the child").
    """

    include_attributes: bool = True
    split_attribute_values: bool = True


class CollectionBuilder:
    """Accumulates XML documents into one data tree.

    Documents may be given as raw XML strings, parsed
    :class:`~repro.xmltree.parser.XMLElement` values, or
    :class:`xml.etree.ElementTree.Element` values.
    """

    def __init__(self, options: BuildOptions | None = None) -> None:
        self._options = options or BuildOptions()
        self._builder = TreeBuilder()
        self._document_count = 0

    @property
    def document_count(self) -> int:
        return self._document_count

    def add_xml(self, text: str) -> None:
        """Parse and add one XML document."""
        self.add_element(parse_document(text))

    def add_xml_fragment(self, text: str) -> None:
        """Parse text containing several sibling documents and add each."""
        for element in parse_fragment(text):
            self.add_element(element)

    def add_element(self, element: "XMLElement | ElementTree.Element") -> None:
        """Add one parsed document root."""
        if isinstance(element, XMLElement):
            self._add_own(element)
        elif isinstance(element, ElementTree.Element):
            self._add_etree(element)
        else:
            raise ReproError(f"unsupported document type {type(element).__name__}")
        self._document_count += 1

    def finish(self) -> DataTree:
        """Return the completed data tree."""
        return self._builder.finish()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _add_attributes(self, attributes: Iterable[tuple[str, str]]) -> None:
        builder = self._builder
        for name, value in attributes:
            builder.start_struct(name)
            if self._options.split_attribute_values:
                builder.add_text(value)
            else:
                words = tokenize(value)
                if words:
                    builder.add_word(" ".join(words))
            builder.end_struct()

    def _add_own(self, element: XMLElement) -> None:
        builder = self._builder
        builder.start_struct(element.tag)
        if self._options.include_attributes:
            self._add_attributes(element.attributes.items())
        for child in element.children:
            if isinstance(child, str):
                builder.add_text(child)
            else:
                self._add_own(child)
        builder.end_struct()

    def _add_etree(self, element: ElementTree.Element) -> None:
        builder = self._builder
        builder.start_struct(element.tag)
        if self._options.include_attributes:
            self._add_attributes(element.attrib.items())
        if element.text:
            builder.add_text(element.text)
        for child in element:
            self._add_etree(child)
            if child.tail:
                builder.add_text(child.tail)
        builder.end_struct()


def tree_from_xml(*documents: str, options: BuildOptions | None = None) -> DataTree:
    """Build a data tree from one or more XML document strings."""
    builder = CollectionBuilder(options)
    for document in documents:
        builder.add_xml(document)
    return builder.finish()
