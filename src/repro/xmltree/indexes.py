"""The inverted indexes ``I_struct`` and ``I_text`` of Section 6.2.

Both indexes map a label to the posting of all data nodes carrying that
label; a posting entry holds the four numbers of the encoding —
``(pre, bound, pathcost, inscost)`` — sorted by ``pre``.

Two implementations share one interface:

* :class:`MemoryNodeIndexes` keeps per-label pre lists and assembles
  posting tuples from the (possibly re-encoded) tree arrays on fetch;
* :class:`StoredNodeIndexes` serializes complete postings into two
  namespaces of a key-value store (the Berkeley-DB shape the paper uses)
  and reads them back without touching the tree.
"""

from __future__ import annotations

from collections.abc import Iterator

from ..errors import KeyNotFoundError, SchemaError
from ..storage.cache import PostingCache
from ..storage.kv import Namespace, Store
from ..storage.overlay import MISSING, current_overlay
from ..storage.postings import (
    NodePosting,
    decode_node_posting_columns,
    encode_node_postings,
)
from ..telemetry.collector import current as _telemetry_current
from .model import DataTree, NodeType

STRUCT_NAMESPACE = b"Istruct"
TEXT_NAMESPACE = b"Itext"


class NodeIndexes:
    """Interface of the ``I_struct`` / ``I_text`` pair."""

    def fetch(self, label: str, node_type: NodeType) -> list[NodePosting]:
        """Posting of ``label`` in the index for ``node_type``; empty if
        the label never occurs."""
        raise NotImplementedError

    def fetch_derived(self, label: str, node_type: NodeType, variant, build):
        """A value derived from the posting of ``label`` — in practice
        the evaluation kernel's columnar build — cached across queries
        where the implementation can prove freshness.

        ``build`` receives the posting list and returns the derived
        value; ``variant`` distinguishes derivations of the same posting
        (the kernel's leaf/non-leaf fetch tracks).  The base
        implementation performs no caching; see
        :class:`MemoryNodeIndexes` (insert-cost-fingerprint tagging) and
        :class:`StoredNodeIndexes` (store-generation tagging through the
        shared :class:`~repro.storage.cache.PostingCache`).  Cached
        values are shared objects: callers must treat them as immutable,
        exactly like cached postings.
        """
        return build(self.fetch(label, node_type))

    def labels(self, node_type: NodeType) -> Iterator[str]:
        """All labels present in the index for ``node_type``."""
        raise NotImplementedError

    def posting_size(self, label: str, node_type: NodeType) -> int:
        """Number of nodes carrying ``label`` (the selectivity *s* input)."""
        return len(self.fetch(label, node_type))


class MemoryNodeIndexes(NodeIndexes):
    """In-memory indexes over a live :class:`DataTree`.

    Postings are assembled on fetch from the tree's current arrays, so a
    re-encoding with different insert costs is picked up automatically.
    """

    def __init__(self, tree: DataTree) -> None:
        self._tree = tree
        self._by_type: tuple[dict[str, list[int]], dict[str, list[int]]] = ({}, {})
        self._derived: dict = {}
        # tombstoned documents are holes in the preorder: their nodes stay
        # in the arrays but must never appear in a posting
        flags = tree.live_flags() if tree.dead_roots else None
        for pre in range(len(tree)):
            if flags is not None and not flags[pre]:
                continue
            table = self._by_type[tree.types[pre]]
            table.setdefault(tree.labels[pre], []).append(pre)

    def fetch(self, label: str, node_type: NodeType) -> list[NodePosting]:
        pres = self._by_type[node_type].get(label)
        telemetry = _telemetry_current()
        if telemetry is not None:
            telemetry.count("index.data_fetches")
            telemetry.count("index.data_postings", len(pres) if pres else 0)
        if not pres:
            return []
        tree = self._tree
        bounds = tree.bounds
        pathcosts = tree.pathcosts
        inscosts = tree.inscosts
        return [(pre, bounds[pre], pathcosts[pre], inscosts[pre]) for pre in pres]

    def fetch_derived(self, label: str, node_type: NodeType, variant, build):
        """Derived-value cache tagged with the tree's insert-cost
        fingerprint: re-encoding the tree under a different cost table
        changes the fingerprint and lazily drops every cached value.

        The fingerprint is snapshotted *before* assembling the posting
        (the same ordering contract as the stored indexes' generation
        snapshot), so a re-encode racing the build leaves an entry that
        the next lookup rejects instead of one that masks the re-encode.
        A ``None`` fingerprint means costs were never encoded (or were
        encoded unfingerprinted) and disables caching.
        """
        fingerprint = self._tree.insert_cost_fingerprint
        key = (label, node_type, variant)
        cached = self._derived.get(key)
        if cached is not None and fingerprint is not None and cached[0] == fingerprint:
            telemetry = _telemetry_current()
            if telemetry is not None:
                telemetry.count("kernel.column_cache_hits")
            return cached[1]
        value = build(self.fetch(label, node_type))
        telemetry = _telemetry_current()
        if telemetry is not None:
            telemetry.count("kernel.column_cache_misses")
        if fingerprint is not None:
            self._derived[key] = (fingerprint, value)
        return value

    def labels(self, node_type: NodeType) -> Iterator[str]:
        return iter(self._by_type[node_type])

    def posting_size(self, label: str, node_type: NodeType) -> int:
        return len(self._by_type[node_type].get(label, ()))

    @classmethod
    def evolve(
        cls,
        old: "MemoryNodeIndexes",
        tree: DataTree,
        added: "range | None" = None,
        removed: "tuple[int, int] | None" = None,
    ) -> "MemoryNodeIndexes":
        """Copy-on-write successor of ``old`` after a document mutation.

        ``added`` is the pre range of a grafted document, ``removed`` the
        ``(root, bound)`` interval of a tombstoned one (both for a
        replace).  Only the label lists a mutation touches are copied;
        everything else is shared with ``old``, whose pinned readers keep
        their consistent pre-mutation view.  Removal before addition
        keeps every list pre-sorted (grafted pres are the highest).
        """
        new = cls.__new__(cls)
        new._tree = tree
        new._derived = {}
        tables: tuple[dict[str, list[int]], dict[str, list[int]]] = (
            dict(old._by_type[0]),
            dict(old._by_type[1]),
        )
        new._by_type = tables
        if removed is not None:
            root, bound = removed
            affected = {
                (tree.types[pre], tree.labels[pre])
                for pre in range(root, bound + 1)
            }
            for node_type, label in affected:
                table = tables[node_type]
                kept = [pre for pre in table[label] if not root <= pre <= bound]
                if kept:
                    table[label] = kept
                else:
                    del table[label]
        if added is not None:
            copied: set[tuple[NodeType, str]] = set()
            for pre in added:
                node_type = tree.types[pre]
                label = tree.labels[pre]
                table = tables[node_type]
                if (node_type, label) not in copied:
                    table[label] = list(table.get(label, ()))
                    copied.add((node_type, label))
                table[label].append(pre)
        return new


class StoredNodeIndexes(NodeIndexes):
    """Indexes persisted in a key-value store.

    The serialized postings bake in the ``pathcost``/``inscost`` values of
    the insert-cost table in force at build time; evaluating with a
    different insert-cost table requires rebuilding (callers check the
    tree's :attr:`~repro.xmltree.model.DataTree.insert_cost_fingerprint`).

    An optional shared :class:`~repro.storage.cache.PostingCache` keeps
    decoded postings across fetches (and across queries); entries are
    invalidated by the store's generation counter on any write, so a
    re-indexed document is never served from stale decoded state.
    """

    def __init__(self, store: Store, posting_cache: "PostingCache | None" = None) -> None:
        self._store = store
        self._struct = Namespace(store, STRUCT_NAMESPACE)
        self._text = Namespace(store, TEXT_NAMESPACE)
        self._cache = posting_cache

    @classmethod
    def build(cls, tree: DataTree, store: Store) -> "StoredNodeIndexes":
        """Serialize the indexes of ``tree`` into ``store``."""
        memory = MemoryNodeIndexes(tree)
        indexes = cls(store)
        for node_type, namespace in (
            (NodeType.STRUCT, indexes._struct),
            (NodeType.TEXT, indexes._text),
        ):
            for label in memory.labels(node_type):
                posting = memory.fetch(label, node_type)
                namespace.put(_label_key(label), encode_node_postings(_as_ints(posting)))
        return indexes

    def fetch(self, label: str, node_type: NodeType) -> list[NodePosting]:
        if node_type == NodeType.STRUCT:
            namespace, tag = self._struct, STRUCT_NAMESPACE
        else:
            namespace, tag = self._text, TEXT_NAMESPACE
        telemetry = _telemetry_current()
        key = _label_key(label)
        # A pinned snapshot's overlay outranks both the cache and the
        # store: a hit is the decoded value at the snapshot's generation,
        # a miss proves the key is untouched since then.
        overlay = current_overlay()
        if overlay is not None:
            pinned = overlay.get(tag, key)
            if pinned is not MISSING:
                if telemetry is not None:
                    telemetry.count("index.data_fetches")
                    telemetry.count("index.data_postings", len(pinned))
                    telemetry.count("mutation.overlay_hits")
                return pinned
        cache = self._cache
        # Snapshot the generation *before* reading: if a writer lands
        # between the read and the cache insert, the entry carries the
        # pre-write generation and the next lookup discards it.  Reading
        # the generation again at put time would stamp possibly-old bytes
        # with the new generation — permanently stale.
        generation = self._store.generation
        if cache is not None:
            posting = cache.get(tag, key, generation)
            if posting is not None:
                if telemetry is not None:
                    telemetry.count("index.data_fetches")
                    telemetry.count("index.data_postings", len(posting))
                return posting
        try:
            data = namespace.get(key)
        except KeyNotFoundError:
            if telemetry is not None:
                telemetry.count("index.data_fetches")
                telemetry.count("index.data_postings", 0)
            return []
        # columnar decode: flat array('q') buffers the evaluation kernel
        # borrows zero-copy (rows still read as tuples everywhere else)
        posting = decode_node_posting_columns(data)
        if cache is not None:
            cache.put(tag, key, generation, posting)
        if telemetry is not None:
            telemetry.count("index.data_fetches")
            telemetry.count("index.data_postings", len(posting))
        return posting

    def fetch_derived(self, label: str, node_type: NodeType, variant, build):
        """Derived-value cache layered on the shared
        :class:`~repro.storage.cache.PostingCache`: values are tagged
        with the store generation snapshotted *before* the posting read
        (the invalidation ordering documented on :meth:`fetch`), so any
        write to the store lazily drops cached columns exactly like it
        drops cached postings."""
        cache = self._cache
        tag = STRUCT_NAMESPACE if node_type == NodeType.STRUCT else TEXT_NAMESPACE
        overlay = current_overlay()
        if overlay is not None and overlay.get(tag, _label_key(label)) is not MISSING:
            # pinned key: build from the overlay value (via fetch) and
            # keep it out of the generation-tagged shared cache
            return build(self.fetch(label, node_type))
        if cache is None:
            return build(self.fetch(label, node_type))
        key = _label_key(label) + (b"\x01" if variant else b"\x00")
        generation = self._store.generation
        value = cache.get_derived(tag, key, generation)
        if value is not None:
            return value
        posting = self.fetch(label, node_type)
        value = build(posting)
        cache.put_derived(tag, key, generation, value, len(posting))
        return value

    def labels(self, node_type: NodeType) -> Iterator[str]:
        namespace = self._struct if node_type == NodeType.STRUCT else self._text
        for key, _ in namespace.scan():
            yield key.decode("utf-8")


def _label_key(label: str) -> bytes:
    return label.encode("utf-8")


def _as_ints(posting: list[NodePosting]) -> list[tuple[int, int, int, int]]:
    """The varint codecs need integers; reject fractional costs loudly."""
    result = []
    for pre, bound, pathcost, inscost in posting:
        int_pathcost = int(pathcost)
        int_inscost = int(inscost)
        if int_pathcost != pathcost or int_inscost != inscost:
            raise SchemaError(
                "stored indexes require integer insert costs; "
                f"got pathcost={pathcost}, inscost={inscost}"
            )
        result.append((pre, bound, int_pathcost, int_inscost))
    return result
