"""Collection statistics: the quantities the complexity bounds use.

Section 6.5 bounds the direct evaluation by ``O(n² · r · s · l)`` where
*s* is the maximal posting length (selectivity) and *l* the maximal
number of repetitions of a label along a path (recursivity); Section 7.4
adds the schema-side selectivity *s_s* and the maximal instance count
*s_d*.  This module measures all of them for a collection, so experiment
reports can state the regime a workload is in.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .model import DataTree, NodeType


@dataclass
class CollectionStatistics:
    """Measured characteristics of one data tree (and optionally its
    schema)."""

    node_count: int = 0
    struct_count: int = 0
    text_count: int = 0
    document_count: int = 0
    distinct_element_names: int = 0
    distinct_terms: int = 0
    max_depth: int = 0
    #: s — the longest posting over both indexes
    max_selectivity: int = 0
    #: the label realizing s
    max_selectivity_label: str = ""
    #: l — the most repetitions of one label along a root-to-leaf path
    max_label_repetition: int = 0
    #: schema-side numbers (0 when no schema was given)
    schema_size: int = 0
    schema_selectivity: int = 0
    max_instances_per_class: int = 0
    depth_histogram: dict[int, int] = field(default_factory=dict)

    def format(self) -> str:
        """Readable multi-line summary of the measured quantities."""
        lines = [
            f"nodes: {self.node_count} ({self.struct_count} struct, {self.text_count} text)"
            f" in {self.document_count} document(s)",
            f"vocabulary: {self.distinct_element_names} element names, "
            f"{self.distinct_terms} terms",
            f"selectivity s = {self.max_selectivity} (label {self.max_selectivity_label!r})",
            f"recursivity l = {self.max_label_repetition}, max depth = {self.max_depth}",
        ]
        if self.schema_size:
            lines.append(
                f"schema: {self.schema_size} classes, s_s = {self.schema_selectivity}, "
                f"s_d = {self.max_instances_per_class}"
            )
        return "\n".join(lines)


def collect_statistics(tree: DataTree, schema=None) -> CollectionStatistics:
    """Measure ``tree`` (and ``schema`` when given)."""
    stats = CollectionStatistics()
    stats.node_count = len(tree)
    stats.document_count = len(tree.document_roots())

    struct_counts: dict[str, int] = {}
    text_counts: dict[str, int] = {}
    for pre in range(len(tree)):
        if tree.types[pre] == NodeType.STRUCT:
            stats.struct_count += 1
            struct_counts[tree.labels[pre]] = struct_counts.get(tree.labels[pre], 0) + 1
        else:
            stats.text_count += 1
            text_counts[tree.labels[pre]] = text_counts.get(tree.labels[pre], 0) + 1
    stats.distinct_element_names = len(struct_counts)
    stats.distinct_terms = len(text_counts)
    for table in (struct_counts, text_counts):
        for label, count in table.items():
            if count > stats.max_selectivity:
                stats.max_selectivity = count
                stats.max_selectivity_label = label

    # depth histogram and per-path label repetition in one preorder walk
    # with an explicit path stack of label counters
    path_counts: dict[str, int] = {}
    depth_of: list[int] = [0] * len(tree)
    for pre in range(len(tree)):
        parent = tree.parents[pre]
        depth_of[pre] = 0 if parent == -1 else depth_of[parent] + 1
        depth = depth_of[pre]
        stats.depth_histogram[depth] = stats.depth_histogram.get(depth, 0) + 1
        if depth > stats.max_depth:
            stats.max_depth = depth
    # label repetition: walk each root-to-node path implicitly by keeping
    # counts keyed on (label); a stack-based traversal avoids O(N·depth)
    stack: list[tuple[int, bool]] = [(0, False)]
    while stack:
        pre, done = stack.pop()
        label = tree.labels[pre]
        if done:
            path_counts[label] -= 1
            continue
        path_counts[label] = path_counts.get(label, 0) + 1
        if path_counts[label] > stats.max_label_repetition:
            stats.max_label_repetition = path_counts[label]
        stack.append((pre, True))
        for child in tree.children(pre):
            stack.append((child, False))

    if schema is not None:
        stats.schema_size = len(schema)
        label_counts: dict[tuple[str, int], int] = {}
        for node in range(len(schema)):
            key = (schema.labels[node], int(schema.types[node]))
            label_counts[key] = label_counts.get(key, 0) + 1
            instances = schema.instance_count(node)
            if instances > stats.max_instances_per_class:
                stats.max_instances_per_class = instances
        stats.schema_selectivity = max(label_counts.values(), default=0)
    return stats
