"""A small, dependency-free XML parser.

The reproduction builds its data trees from raw XML text, so it ships its
own recursive-descent parser for the XML subset that data-centric
documents use: elements, attributes, character data, CDATA sections,
comments, processing instructions, the XML declaration, and the five
predefined entities plus numeric character references.

The parser produces :class:`XMLElement` values — a deliberately plain
structure (tag, attributes, ordered children where text runs appear as
plain strings) that the data-tree builder consumes.  ``xml.etree`` trees
are also accepted by the builder, so users can bring their own parser.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import XMLSyntaxError

_PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

_NAME_START_EXTRA = set("_:")
_NAME_EXTRA = set("_:.-")


@dataclass
class XMLElement:
    """One parsed element: ``children`` interleaves ``str`` (text runs)
    and nested :class:`XMLElement` values in document order."""

    tag: str
    attributes: dict[str, str] = field(default_factory=dict)
    children: list["XMLElement | str"] = field(default_factory=list)

    def text_content(self) -> str:
        """All text beneath this element, concatenated in order."""
        parts = []
        for child in self.children:
            if isinstance(child, str):
                parts.append(child)
            else:
                parts.append(child.text_content())
        return "".join(parts)

    def find_all(self, tag: str) -> list["XMLElement"]:
        """All descendant elements (including self) with the given tag."""
        found = []
        if self.tag == tag:
            found.append(self)
        for child in self.children:
            if isinstance(child, XMLElement):
                found.extend(child.find_all(tag))
        return found

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"XMLElement({self.tag!r}, attrs={len(self.attributes)}, children={len(self.children)})"


def parse_document(text: str) -> XMLElement:
    """Parse one XML document and return its root element."""
    parser = _Parser(text)
    return parser.parse_document()


def parse_fragment(text: str) -> list[XMLElement]:
    """Parse a sequence of sibling elements (no single-root requirement)."""
    parser = _Parser(text)
    return parser.parse_fragment()


class _Parser:
    """Recursive-descent parser over a string buffer."""

    def __init__(self, text: str) -> None:
        self._text = text
        self._pos = 0
        self._len = len(text)

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------

    def parse_document(self) -> XMLElement:
        self._skip_prolog()
        root = self._parse_element()
        self._skip_misc()
        if self._pos != self._len:
            raise XMLSyntaxError("content after document element", self._pos)
        return root

    def parse_fragment(self) -> list[XMLElement]:
        self._skip_prolog()
        elements = []
        while True:
            self._skip_misc()
            if self._pos >= self._len:
                return elements
            elements.append(self._parse_element())

    # ------------------------------------------------------------------
    # structural pieces
    # ------------------------------------------------------------------

    def _skip_prolog(self) -> None:
        self._skip_whitespace()
        if self._text.startswith("<?xml", self._pos):
            end = self._text.find("?>", self._pos)
            if end < 0:
                raise XMLSyntaxError("unterminated XML declaration", self._pos)
            self._pos = end + 2
        self._skip_misc()
        if self._text.startswith("<!DOCTYPE", self._pos):
            self._skip_doctype()
        self._skip_misc()

    def _skip_doctype(self) -> None:
        depth = 0
        while self._pos < self._len:
            char = self._text[self._pos]
            if char == "[":
                depth += 1
            elif char == "]":
                depth -= 1
            elif char == ">" and depth <= 0:
                self._pos += 1
                return
            self._pos += 1
        raise XMLSyntaxError("unterminated DOCTYPE", self._pos)

    def _skip_misc(self) -> None:
        """Skip whitespace, comments, and processing instructions."""
        while True:
            self._skip_whitespace()
            if self._text.startswith("<!--", self._pos):
                end = self._text.find("-->", self._pos + 4)
                if end < 0:
                    raise XMLSyntaxError("unterminated comment", self._pos)
                self._pos = end + 3
            elif self._text.startswith("<?", self._pos):
                end = self._text.find("?>", self._pos + 2)
                if end < 0:
                    raise XMLSyntaxError("unterminated processing instruction", self._pos)
                self._pos = end + 2
            else:
                return

    def _parse_element(self) -> XMLElement:
        if self._pos >= self._len or self._text[self._pos] != "<":
            raise XMLSyntaxError("expected '<'", self._pos)
        self._pos += 1
        tag = self._parse_name()
        attributes = self._parse_attributes()
        self._skip_whitespace()
        if self._text.startswith("/>", self._pos):
            self._pos += 2
            return XMLElement(tag, attributes)
        if self._pos >= self._len or self._text[self._pos] != ">":
            raise XMLSyntaxError(f"malformed start tag <{tag}>", self._pos)
        self._pos += 1
        element = XMLElement(tag, attributes)
        self._parse_content(element)
        return element

    def _parse_content(self, element: XMLElement) -> None:
        text_parts: list[str] = []

        def flush_text() -> None:
            if text_parts:
                element.children.append("".join(text_parts))
                text_parts.clear()

        while True:
            if self._pos >= self._len:
                raise XMLSyntaxError(f"unterminated element <{element.tag}>", self._pos)
            char = self._text[self._pos]
            if char == "<":
                if self._text.startswith("</", self._pos):
                    flush_text()
                    self._pos += 2
                    closing = self._parse_name()
                    if closing != element.tag:
                        raise XMLSyntaxError(
                            f"mismatched closing tag </{closing}> for <{element.tag}>", self._pos
                        )
                    self._skip_whitespace()
                    if self._pos >= self._len or self._text[self._pos] != ">":
                        raise XMLSyntaxError("malformed closing tag", self._pos)
                    self._pos += 1
                    return
                if self._text.startswith("<!--", self._pos):
                    end = self._text.find("-->", self._pos + 4)
                    if end < 0:
                        raise XMLSyntaxError("unterminated comment", self._pos)
                    self._pos = end + 3
                elif self._text.startswith("<![CDATA[", self._pos):
                    end = self._text.find("]]>", self._pos + 9)
                    if end < 0:
                        raise XMLSyntaxError("unterminated CDATA section", self._pos)
                    text_parts.append(self._text[self._pos + 9 : end])
                    self._pos = end + 3
                elif self._text.startswith("<?", self._pos):
                    end = self._text.find("?>", self._pos + 2)
                    if end < 0:
                        raise XMLSyntaxError("unterminated processing instruction", self._pos)
                    self._pos = end + 2
                else:
                    flush_text()
                    element.children.append(self._parse_element())
            else:
                start = self._pos
                next_marker = self._text.find("<", self._pos)
                amp = self._text.find("&", self._pos)
                if amp != -1 and (next_marker == -1 or amp < next_marker):
                    text_parts.append(self._text[start:amp])
                    self._pos = amp
                    text_parts.append(self._parse_entity())
                else:
                    if next_marker == -1:
                        raise XMLSyntaxError(
                            f"unterminated element <{element.tag}>", self._pos
                        )
                    text_parts.append(self._text[start:next_marker])
                    self._pos = next_marker

    # ------------------------------------------------------------------
    # lexical pieces
    # ------------------------------------------------------------------

    def _parse_attributes(self) -> dict[str, str]:
        attributes: dict[str, str] = {}
        while True:
            self._skip_whitespace()
            if self._pos >= self._len:
                raise XMLSyntaxError("unterminated start tag", self._pos)
            char = self._text[self._pos]
            if char in (">", "/"):
                return attributes
            name = self._parse_name()
            self._skip_whitespace()
            if self._pos >= self._len or self._text[self._pos] != "=":
                raise XMLSyntaxError(f"attribute {name!r} missing '='", self._pos)
            self._pos += 1
            self._skip_whitespace()
            attributes[name] = self._parse_attribute_value()

    def _parse_attribute_value(self) -> str:
        if self._pos >= self._len or self._text[self._pos] not in "\"'":
            raise XMLSyntaxError("attribute value must be quoted", self._pos)
        quote = self._text[self._pos]
        self._pos += 1
        parts: list[str] = []
        while True:
            if self._pos >= self._len:
                raise XMLSyntaxError("unterminated attribute value", self._pos)
            char = self._text[self._pos]
            if char == quote:
                self._pos += 1
                return "".join(parts)
            if char == "&":
                parts.append(self._parse_entity())
            elif char == "<":
                raise XMLSyntaxError("'<' not allowed in attribute value", self._pos)
            else:
                parts.append(char)
                self._pos += 1

    def _parse_entity(self) -> str:
        # caller guarantees self._text[self._pos] == "&"
        end = self._text.find(";", self._pos + 1)
        if end < 0 or end - self._pos > 12:
            raise XMLSyntaxError("unterminated entity reference", self._pos)
        body = self._text[self._pos + 1 : end]
        self._pos = end + 1
        if body.startswith("#x") or body.startswith("#X"):
            try:
                return chr(int(body[2:], 16))
            except ValueError:
                raise XMLSyntaxError(f"bad character reference &{body};", self._pos) from None
        if body.startswith("#"):
            try:
                return chr(int(body[1:]))
            except ValueError:
                raise XMLSyntaxError(f"bad character reference &{body};", self._pos) from None
        try:
            return _PREDEFINED_ENTITIES[body]
        except KeyError:
            raise XMLSyntaxError(f"unknown entity &{body};", self._pos) from None

    def _parse_name(self) -> str:
        start = self._pos
        if start >= self._len:
            raise XMLSyntaxError("expected a name", start)
        char = self._text[start]
        if not (char.isalpha() or char in _NAME_START_EXTRA):
            raise XMLSyntaxError(f"invalid name start character {char!r}", start)
        pos = start + 1
        while pos < self._len:
            char = self._text[pos]
            if char.isalnum() or char in _NAME_EXTRA:
                pos += 1
            else:
                break
        self._pos = pos
        return self._text[start:pos]

    def _skip_whitespace(self) -> None:
        while self._pos < self._len and self._text[self._pos] in " \t\r\n":
            self._pos += 1
