"""Serializing data-tree subtrees back to XML.

The Section 4 normalization is lossy (attributes became child elements,
text was split into words), so serialization produces a canonical XML
rendering of the *normalized* tree: struct nodes become elements, runs of
text children become space-joined text.  Useful for returning results to
users and for round-trip testing.
"""

from __future__ import annotations

from .model import DataTree, NodeType

_ESCAPES = [("&", "&amp;"), ("<", "&lt;"), (">", "&gt;")]


def escape_text(text: str) -> str:
    """Escape character data for XML output."""
    for char, entity in _ESCAPES:
        text = text.replace(char, entity)
    return text


def subtree_to_xml(tree: DataTree, pre: int, indent: "int | None" = None) -> str:
    """Serialize the subtree rooted at ``pre``.

    ``indent`` pretty-prints with that many spaces per level; ``None``
    produces compact single-line output.
    """
    if tree.node_type(pre) == NodeType.TEXT:
        return escape_text(tree.label(pre))
    pieces: list[str] = []
    _render(tree, pre, pieces, indent, 0)
    return "".join(pieces)


def collection_to_xml(tree: DataTree, indent: "int | None" = None) -> str:
    """Serialize every document of the collection, newline-separated."""
    return "\n".join(
        subtree_to_xml(tree, root, indent=indent) for root in tree.document_roots()
    )


def _render(
    tree: DataTree, pre: int, pieces: list[str], indent: "int | None", depth: int
) -> None:
    pad = "" if indent is None else " " * (indent * depth)
    newline = "" if indent is None else "\n"
    label = tree.label(pre)
    children = tree.children(pre)
    if not children:
        pieces.append(f"{pad}<{label}/>{newline}")
        return
    child_types = {tree.node_type(child) for child in children}
    if child_types == {NodeType.TEXT}:
        words = " ".join(escape_text(tree.label(child)) for child in children)
        pieces.append(f"{pad}<{label}>{words}</{label}>{newline}")
        return
    pieces.append(f"{pad}<{label}>{newline}")
    run: list[str] = []

    def flush_run() -> None:
        if run:
            text_pad = "" if indent is None else " " * (indent * (depth + 1))
            pieces.append(f"{text_pad}{' '.join(run)}{newline}")
            run.clear()

    for child in children:
        if tree.node_type(child) == NodeType.TEXT:
            run.append(escape_text(tree.label(child)))
        else:
            flush_run()
            _render(tree, child, pieces, indent, depth + 1)
    flush_run()
    pieces.append(f"{pad}</{label}>{newline}")
