"""Structural validation of data trees.

``validate_tree`` checks every invariant the evaluators rely on:
column lengths, parent/child consistency, preorder numbering, bound
intervals, and the pathcost telescoping property.  The loader runs it on
freshly deserialized trees (defense in depth against silent corruption
the page checksums cannot express), and tests use it as an oracle.
"""

from __future__ import annotations

from ..errors import SchemaError
from .model import DataTree, NodeType


def validate_tree(tree: DataTree) -> None:
    """Raise :class:`~repro.errors.SchemaError` on any violated invariant."""
    size = len(tree.labels)
    for name in ("types", "parents", "bounds", "inscosts", "pathcosts"):
        column = getattr(tree, name)
        if len(column) != size:
            raise SchemaError(
                f"column {name!r} has {len(column)} entries, expected {size}"
            )
    if size == 0:
        raise SchemaError("a data tree must contain at least the super-root")
    if tree.parents[0] != -1:
        raise SchemaError("the super-root must have parent -1")

    for pre in range(size):
        parent = tree.parents[pre]
        if pre > 0:
            if not 0 <= parent < pre:
                raise SchemaError(
                    f"node {pre}: parent {parent} is not an earlier node"
                )
            if tree.bounds[parent] < pre:
                raise SchemaError(
                    f"node {pre}: outside its parent's bound interval"
                )
        bound = tree.bounds[pre]
        if not pre <= bound < size:
            raise SchemaError(f"node {pre}: bound {bound} out of range")
        if tree.types[pre] == NodeType.TEXT:
            if tree._first_child[pre] != -1:
                raise SchemaError(f"text node {pre} has children")
        if not tree.labels[pre]:
            raise SchemaError(f"node {pre} has an empty label")

    # children linkage: reconstruct from the parent column in one pass
    # and compare against the first-child/next-sibling links
    children_of: list[list[int]] = [[] for _ in range(size)]
    for pre in range(1, size):
        children_of[tree.parents[pre]].append(pre)
    for pre in range(size):
        from_links = tree.children(pre)
        if from_links != children_of[pre]:
            raise SchemaError(
                f"node {pre}: child links {from_links} disagree with parent "
                f"column {children_of[pre]}"
            )

    # pathcost telescoping
    for pre in range(1, size):
        parent = tree.parents[pre]
        expected = tree.pathcosts[parent] + tree.inscosts[parent]
        if tree.pathcosts[pre] != expected:
            raise SchemaError(
                f"node {pre}: pathcost {tree.pathcosts[pre]} != "
                f"pathcost(parent) + inscost(parent) = {expected}"
            )
        if tree.types[pre] == NodeType.TEXT and tree.inscosts[pre] != 0:
            raise SchemaError(f"text node {pre} has non-zero inscost")
