"""Command-line interface: build, inspect, and query collections.

Examples::

    python -m repro build catalog.apxq docs/*.xml
    python -m repro query catalog.apxq 'cd[title["piano"]]' -n 5
    python -m repro query docs/catalog.xml 'cd[title["piano"]]' --costs costs.txt
    python -m repro query catalog.apxq 'cd[title["piano"]]' --explain
    python -m repro query catalog.apxq 'cd[title["piano"]]' --stats
    python -m repro plan catalog.apxq 'cd[title["piano"]]' -n 5
    python -m repro info catalog.apxq
    python -m repro schema catalog.apxq
    python -m repro build catalog.apxq docs/*.xml --durability wal
    python -m repro insert catalog.apxq new-disc.xml --durability wal
    python -m repro delete catalog.apxq 42
    python -m repro replace catalog.apxq 42 fixed-disc.xml
    python -m repro verify catalog.apxq
    python -m repro build catalog.d docs/*.xml --shards 4
    python -m repro serve catalog.apxq --port 7733
"""

from __future__ import annotations

import argparse
import sys
import time

from ..approxql.costs import CostModel
from ..errors import ReproError
from ..shard import ShardedDatabase, is_sharded_directory
from .database import Database
from .persist import StoreOptions

_DB_SUFFIX = ".apxq"


def _store_options(args: argparse.Namespace) -> StoreOptions:
    """The CLI's storage flags as the one shared keyword surface
    (:class:`~repro.core.persist.StoreOptions`) that
    :meth:`Database.open` / :meth:`Database.save` also take."""
    return StoreOptions(
        page_cache_pages=getattr(args, "page_cache_pages", None),
        posting_cache_bytes=getattr(args, "posting_cache_bytes", None),
        durability=getattr(args, "durability", "none") or "none",
        wal_checkpoint_bytes=getattr(args, "wal_checkpoint_bytes", None),
        compiled_cache_entries=getattr(args, "compiled_cache_entries", None),
        result_cache_entries=getattr(args, "result_cache_entries", None),
    )


def _open_database(args: argparse.Namespace):
    """A single ``.apxq`` path opens a saved database, a sharded
    directory (one holding a ``MANIFEST.json``) opens a
    :class:`~repro.shard.ShardedDatabase` (both honoring the cache and
    durability knobs); anything else is read as XML documents."""
    sources = args.sources
    if len(sources) == 1 and is_sharded_directory(sources[0]):
        return ShardedDatabase.open(sources[0], _store_options(args))
    if len(sources) == 1 and sources[0].endswith(_DB_SUFFIX):
        return Database.open(sources[0], _store_options(args))
    documents = []
    for path in sources:
        with open(path, encoding="utf-8") as handle:
            documents.append(handle.read())
    database = Database.from_xml(*documents)
    # the hot-query cache knobs apply to ad-hoc XML sources too
    database.set_query_cache(
        getattr(args, "compiled_cache_entries", None),
        getattr(args, "result_cache_entries", None),
    )
    return database


def _open_stored(args: argparse.Namespace):
    """Open the saved database (file or sharded directory) a mutation
    command targets."""
    if is_sharded_directory(args.database):
        return ShardedDatabase.open(args.database, _store_options(args))
    if not args.database.endswith(_DB_SUFFIX):
        raise ReproError(
            f"mutation commands need a saved {_DB_SUFFIX} database or a "
            f"sharded directory, got {args.database!r}"
        )
    return Database.open(args.database, _store_options(args))


def _add_cache_options(parser: argparse.ArgumentParser) -> None:
    """Read-path cache knobs, honored when the source is a saved database."""
    parser.add_argument(
        "--page-cache-pages",
        type=int,
        default=None,
        metavar="N",
        help="pager LRU cache capacity in pages (0 disables; default 256)",
    )
    parser.add_argument(
        "--posting-cache-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="decoded posting cache budget in bytes (0 disables; default 8 MiB)",
    )
    parser.add_argument(
        "--compiled-cache-entries",
        type=int,
        default=None,
        metavar="N",
        help="compiled-query cache capacity in entries (0 disables; default 256)",
    )
    parser.add_argument(
        "--result-cache-entries",
        type=int,
        default=None,
        metavar="N",
        help="best-n result cache capacity in entries (0 disables; default 128)",
    )
    _add_durability_options(parser)


def _add_durability_options(parser: argparse.ArgumentParser) -> None:
    """Durability knobs: WAL vs. straight-through writes."""
    parser.add_argument(
        "--durability",
        choices=("none", "wal"),
        default="none",
        help="crash story for writes: 'wal' logs every page write and makes "
        "commits atomic; 'none' (default) writes straight through",
    )
    parser.add_argument(
        "--wal-checkpoint-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="WAL size that triggers folding the log back into the main "
        "file (default 4 MiB; only with --durability wal)",
    )


def _load_costs(path: "str | None") -> "CostModel | None":
    if path is None:
        return None
    return CostModel.load(path)


def _command_build(args: argparse.Namespace) -> int:
    start = time.perf_counter()
    if args.shards is not None:
        documents = []
        for path in args.sources:
            with open(path, encoding="utf-8") as handle:
                documents.append(handle.read())
        database = ShardedDatabase.from_documents(
            documents, shards=args.shards, partitioner=args.partitioner
        )
        database.save(args.output, _store_options(args))
    else:
        database = _open_database(args)
        database.save(args.output, _store_options(args))
    elapsed = time.perf_counter() - start
    print(f"built {args.output}: {database.describe()} ({elapsed:.1f}s)")
    return 0


def _command_insert(args: argparse.Namespace) -> int:
    database = _open_stored(args)
    with open(args.document, encoding="utf-8") as handle:
        xml = handle.read()
    with database:
        report = database.insert_document(xml)
    print(report.format())
    return 0


def _command_delete(args: argparse.Namespace) -> int:
    database = _open_stored(args)
    with database:
        report = database.delete_document(args.root)
    print(report.format())
    return 0


def _command_replace(args: argparse.Namespace) -> int:
    database = _open_stored(args)
    with open(args.document, encoding="utf-8") as handle:
        xml = handle.read()
    with database:
        report = database.replace_document(args.root, xml)
    print(report.format())
    return 0


def _command_documents(args: argparse.Namespace) -> int:
    database = _open_database(args)
    if isinstance(database, ShardedDatabase):
        for entry in database.manifest.live_documents():
            print(f"{entry.global_root}\tshard {entry.shard}\t{entry.nodes} nodes")
        return 0
    tree = database.tree
    for root in database.documents():
        print(f"{root}\t{tree.label(root)}\t{tree.bounds[root] - root + 1} nodes")
    return 0


def _command_verify(args: argparse.Namespace) -> int:
    from ..storage.verify import verify_store

    report = verify_store(args.path)
    print(report.format())
    return 0 if report.ok else 1


def _command_query(args: argparse.Namespace) -> int:
    database = _open_database(args)
    costs = _load_costs(args.costs)
    n = None if args.n == 0 else args.n
    start = time.perf_counter()
    if args.explain:
        explanations = database.explain(args.query, n=n, costs=costs)
        elapsed = time.perf_counter() - start
        for explanation in explanations:
            print(explanation.format())
        print(f"-- {len(explanations)} result(s) in {elapsed * 1000:.1f} ms")
        return 0
    collect = "timings" if args.stats else "off"
    results = database.query(
        args.query, n=n, costs=costs, method=args.method, collect=collect,
        jobs=args.jobs, executor=args.executor,
    )
    elapsed = time.perf_counter() - start
    for result in results:
        if args.xml:
            print(f"{result.cost}\t{result.xml()}")
        else:
            words = " ".join(result.words()[:10])
            print(f"{result.cost}\t{result.path}\t{words}")
    method = results.method if results.method is not None else args.method
    print(f"-- {len(results)} result(s) in {elapsed * 1000:.1f} ms ({method})")
    if args.stats:
        print(results.report.format())
    return 0


def _command_plan(args: argparse.Namespace) -> int:
    database = _open_database(args)
    n = None if args.n == 0 else args.n
    plan = database.plan(args.query, n=n, method=args.method)
    print(plan.format(verbose=args.verbose))
    return 0


def _command_info(args: argparse.Namespace) -> int:
    database = _open_database(args)
    print(database.describe())
    from ..xmltree.model import NodeType

    if isinstance(database, ShardedDatabase):
        for index, shard in enumerate(database.shard_databases()):
            print(f"  shard {index}: {shard.describe()}")
        return 0
    tree = database.tree
    struct_count = sum(1 for t in tree.types if t == NodeType.STRUCT)
    text_count = len(tree) - struct_count
    print(f"  struct nodes: {struct_count}")
    print(f"  text nodes:   {text_count}")
    print(f"  documents:    {len(tree.document_roots())}")
    print(f"  schema size:  {len(database.schema)} classes")
    return 0


def _command_schema(args: argparse.Namespace) -> int:
    database = _open_database(args)
    if isinstance(database, ShardedDatabase):
        for index, shard in enumerate(database.shard_databases()):
            print(f"-- shard {index}")
            print(shard.schema.format(max_depth=args.depth))
        return 0
    print(database.schema.format(max_depth=args.depth))
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    import asyncio

    from ..server import QueryServer

    database = _open_database(args)
    server = QueryServer(
        database,
        host=args.host,
        port=args.port,
        max_pending=args.max_pending,
        batch_max=args.batch_max,
        jobs=args.jobs,
        executor=args.executor,
    )

    async def run() -> None:
        await server.start()
        print(f"serving {database.describe()}")
        print(f"listening on {server.host}:{server.port} (Ctrl-C to stop)")
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.stop()
            stats = server.stats()
            print(
                f"stopped after {stats['server.requests']} request(s), "
                f"{stats['server.rejections']} rejection(s)"
            )

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    finally:
        database.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="approXQL: approximate tree-pattern queries over XML "
        "(reproduction of Schlieder, EDBT 2002)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    build = commands.add_parser("build", help="build and save a database file")
    build.add_argument(
        "output",
        help=f"output path (conventionally {_DB_SUFFIX}; a directory with --shards)",
    )
    build.add_argument("sources", nargs="+", help="XML document files")
    build.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="partition the collection across N shards and save a "
        "sharded directory instead of a single file",
    )
    build.add_argument(
        "--partitioner",
        choices=("hash", "range"),
        default="hash",
        help="document placement with --shards: 'hash' (default) "
        "scatters by document ordinal, 'range' keeps contiguous "
        "node-balanced runs together",
    )
    _add_durability_options(build)
    build.set_defaults(func=_command_build)

    insert = commands.add_parser(
        "insert", help="add one XML document to a saved database, in place"
    )
    insert.add_argument("database", help=f"a saved {_DB_SUFFIX} file")
    insert.add_argument("document", help="XML file holding one document")
    _add_cache_options(insert)
    insert.set_defaults(func=_command_insert)

    delete = commands.add_parser(
        "delete", help="remove the document rooted at a pre number, in place"
    )
    delete.add_argument("database", help=f"a saved {_DB_SUFFIX} file")
    delete.add_argument("root", type=int, help="document root pre (see 'documents')")
    _add_cache_options(delete)
    delete.set_defaults(func=_command_delete)

    replace = commands.add_parser(
        "replace", help="atomically swap the document at a pre number for an XML file"
    )
    replace.add_argument("database", help=f"a saved {_DB_SUFFIX} file")
    replace.add_argument("root", type=int, help="document root pre (see 'documents')")
    replace.add_argument("document", help="XML file holding the replacement document")
    _add_cache_options(replace)
    replace.set_defaults(func=_command_replace)

    documents = commands.add_parser(
        "documents", help="list live document roots (the pre numbers mutations take)"
    )
    documents.add_argument("sources", nargs="+")
    _add_cache_options(documents)
    documents.set_defaults(func=_command_documents)

    verify = commands.add_parser(
        "verify", help="walk a saved database's pages and WAL frames, checking checksums"
    )
    verify.add_argument("path", help=f"a saved {_DB_SUFFIX} file")
    verify.set_defaults(func=_command_verify)

    query = commands.add_parser("query", help="run an approXQL query")
    query.add_argument("sources", nargs=1, help=f"a saved {_DB_SUFFIX} file or an XML file")
    query.add_argument("query", help="approXQL query text")
    query.add_argument("-n", type=int, default=10, help="result count (0 = all)")
    query.add_argument(
        "--method", choices=("auto", "direct", "schema"), default="auto"
    )
    query.add_argument("--costs", help="cost file (see CostModel.to_lines)")
    query.add_argument("--xml", action="store_true", help="print result subtrees as XML")
    query.add_argument(
        "--explain", action="store_true", help="show the transformations behind each result"
    )
    query.add_argument(
        "--stats",
        action="store_true",
        help="collect telemetry and print a per-stage breakdown "
        "(pages read, postings decoded, second-level queries, timings)",
    )
    query.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="run the schema-driven driver's second-level queries on N "
        "workers (any negative value: one per CPU; results identical "
        "to serial; see --executor for the worker kind)",
    )
    query.add_argument(
        "--executor",
        choices=("thread", "process"),
        default="thread",
        help="worker kind for --jobs: 'thread' (default) or 'process' "
        "(real cores over a read-only shared-memory posting export; "
        "falls back to threads where process pools are unavailable)",
    )
    _add_cache_options(query)
    query.set_defaults(func=_command_query)

    plan = commands.add_parser(
        "plan", help="show how a query would be evaluated, without running it"
    )
    plan.add_argument("sources", nargs=1, help=f"a saved {_DB_SUFFIX} file or an XML file")
    plan.add_argument("query", help="approXQL query text")
    plan.add_argument("-n", type=int, default=10, help="result count (0 = all)")
    plan.add_argument(
        "--method", choices=("auto", "direct", "schema"), default="auto"
    )
    plan.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="also print the planner's cost estimates (candidates, posting "
        "entries, direct-vs-schema scores, k schedule)",
    )
    _add_cache_options(plan)
    plan.set_defaults(func=_command_plan)

    info = commands.add_parser("info", help="collection statistics")
    info.add_argument("sources", nargs="+")
    _add_cache_options(info)
    info.set_defaults(func=_command_info)

    schema = commands.add_parser("schema", help="print the DataGuide")
    schema.add_argument("sources", nargs="+")
    schema.add_argument("--depth", type=int, default=12)
    _add_cache_options(schema)
    schema.set_defaults(func=_command_schema)

    serve = commands.add_parser(
        "serve", help="serve queries over TCP (JSON lines; see docs/SERVING.md)"
    )
    serve.add_argument(
        "sources",
        nargs=1,
        help=f"a saved {_DB_SUFFIX} file or a sharded directory",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=7733, help="TCP port (0 = pick a free one)"
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=64,
        metavar="N",
        help="admission-control bound: requests queued beyond N are "
        "rejected with AdmissionError (default 64)",
    )
    serve.add_argument(
        "--batch-max",
        type=int,
        default=16,
        metavar="N",
        help="largest query batch handed to query_many at once (default 16)",
    )
    serve.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker count for batched query execution (default: batch size, "
        "capped at 8)",
    )
    serve.add_argument(
        "--executor",
        choices=("thread", "process"),
        default="thread",
        help="worker kind for batched execution (see 'query --executor')",
    )
    _add_cache_options(serve)
    serve.set_defaults(func=_command_serve)

    return parser


def main(argv: "list[str] | None" = None) -> int:
    """Entry point of ``python -m repro``; returns the exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
