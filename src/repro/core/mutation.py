"""Incremental index maintenance for online document mutation.

:meth:`repro.core.database.Database.insert_document` /
``delete_document`` / ``replace_document`` mutate the collection at
document granularity while queries keep running.  This module holds the
store-side half of the work: given the tree/schema deltas computed by
:meth:`~repro.xmltree.model.DataTree.graft_document` and
:func:`~repro.schema.dataguide.update_schema_for_insert` /
``update_schema_for_delete``, it rewrites exactly the touched keys of the
three stored indexes —

* ``I_struct`` / ``I_text`` node postings (one key per mutated label),
* ``I_sec`` instance postings (one key per touched class, or per touched
  term of a text class; a renumbering schema rebuild additionally moves
  every key whose class id changed),
* the tree columns (an inserted document's slice as one
  :func:`~repro.core.persist.append_tree_segment`, a deleted document's
  root in the :func:`~repro.core.persist.save_dead_roots` list)

— and nothing else.  Every rewrite first hands the key's *old decoded
value* to the ``preserve`` callback, which the database fans out to the
snapshot overlays of pinned readers (see :mod:`repro.storage.overlay`):
the writer pays the copy, readers stay wait-free.

All store writes of one mutation land inside one WAL commit frame (the
database calls ``store.commit()`` exactly once, after the last write), so
a crash at any I/O boundary rolls the whole mutation back or keeps it
whole — the crash matrix kills inside these frames.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import KeyNotFoundError, SchemaError
from ..schema.dataguide import Schema, SchemaUpdate
from ..schema.indexes import SEC_NAMESPACE, _sec_key
from ..storage.kv import Namespace, Store
from ..storage.postings import (
    decode_instance_postings,
    decode_node_postings,
    encode_instance_postings,
    encode_node_postings,
)
from ..telemetry import collector as _telemetry
from ..xmltree.indexes import STRUCT_NAMESPACE, TEXT_NAMESPACE
from ..xmltree.model import DataTree, NodeType

#: ``preserve(namespace_tag, key, old_decoded_value)`` — called before
#: every store write/delete with the value the key decoded to beforehand
#: (``[]`` when the key did not exist)
PreserveFn = Callable[[bytes, bytes, object], None]


@dataclass(frozen=True)
class MutationReport:
    """What one document mutation did — the mutation-side counterpart of
    :class:`~repro.telemetry.report.QueryReport`.

    ``root`` is the grafted document's root pre (``None`` for a pure
    delete); ``removed_root`` the tombstoned root (``None`` for a pure
    insert).  ``generation`` is the database generation the mutation
    published — snapshots taken before it keep serving the previous one.
    """

    action: str
    generation: int
    root: "int | None" = None
    removed_root: "int | None" = None
    nodes_added: int = 0
    nodes_removed: int = 0
    classes_added: int = 0
    schema_renumbered: bool = False
    keys_rewritten: int = 0
    wall_seconds: float = 0.0

    def format(self) -> str:
        """One-line rendering for the CLI's mutation commands."""
        parts = [f"{self.action}: generation {self.generation}"]
        if self.root is not None:
            parts.append(f"root pre={self.root} (+{self.nodes_added} nodes)")
        if self.removed_root is not None:
            parts.append(f"removed pre={self.removed_root} (-{self.nodes_removed} nodes)")
        if self.classes_added:
            parts.append(f"+{self.classes_added} classes")
        if self.schema_renumbered:
            parts.append("schema renumbered")
        parts.append(f"{self.keys_rewritten} index keys rewritten")
        parts.append(f"{self.wall_seconds * 1000:.1f} ms")
        return "  ".join(parts)


def _ignore_preserve(tag: bytes, key: bytes, value: object) -> None:
    """Default ``preserve`` when no snapshot can be pinned."""


class StoreMutator:
    """Rewrites the touched keys of one mutation inside a stored database.

    One instance serves one mutation, under the database's writer lock.
    ``preserve`` receives every key's old decoded value before the key is
    written or deleted, enabling the overlay copy-on-write contract.
    """

    def __init__(self, store: Store, preserve: "PreserveFn | None" = None) -> None:
        self._store = store
        self._preserve = preserve if preserve is not None else _ignore_preserve
        self.keys_rewritten = 0

    # ------------------------------------------------------------------
    # I_struct / I_text
    # ------------------------------------------------------------------

    def update_node_postings(
        self,
        tree: DataTree,
        added: "range | None" = None,
        removed: "tuple[int, int] | None" = None,
    ) -> None:
        """Rewrite the node postings of every label a mutation touched.

        ``added`` is the grafted pre range, ``removed`` the tombstoned
        ``(root, bound)`` interval.  Removal filters the interval out of
        each affected posting; addition appends the new entries — grafted
        pres are the highest, so the postings stay pre-sorted.
        """
        affected: set[tuple[NodeType, str]] = set()
        if removed is not None:
            root, bound = removed
            for pre in range(root, bound + 1):
                affected.add((tree.types[pre], tree.labels[pre]))
        if added is not None:
            for pre in added:
                affected.add((tree.types[pre], tree.labels[pre]))
        namespaces = {
            NodeType.STRUCT: (Namespace(self._store, STRUCT_NAMESPACE), STRUCT_NAMESPACE),
            NodeType.TEXT: (Namespace(self._store, TEXT_NAMESPACE), TEXT_NAMESPACE),
        }
        for node_type, label in sorted(affected, key=lambda pair: (pair[0], pair[1])):
            namespace, tag = namespaces[node_type]
            key = label.encode("utf-8")
            posting = list(_old_node_posting(namespace, key))
            self._preserve(tag, key, list(posting))
            if removed is not None:
                root, bound = removed
                posting = [entry for entry in posting if not root <= entry[0] <= bound]
            if added is not None:
                for pre in added:
                    if tree.types[pre] == node_type and tree.labels[pre] == label:
                        posting.append(_node_entry(tree, pre))
            self._write_or_delete(
                namespace, key, encode_node_postings(posting) if posting else None
            )

    # ------------------------------------------------------------------
    # I_sec
    # ------------------------------------------------------------------

    def update_secondary(self, old_schema: Schema, update: SchemaUpdate) -> None:
        """Rewrite the ``I_sec`` keys a schema update touched.

        When the update renumbered the schema, the keys of every moved
        class are dropped first (preserving their old values), then the
        touched classes' postings land under their new ids — so a swap of
        two ids cannot interleave a stale value between the phases.
        """
        namespace = Namespace(self._store, SEC_NAMESPACE)
        if update.renumbered:
            assert update.remap is not None
            for old_id, new_id in sorted(update.remap.items()):
                if old_id == new_id:
                    continue
                if old_schema.is_text_class(old_id):
                    for term in sorted(old_schema.term_instances.get(old_id, ())):
                        self._drop(namespace, _sec_key(old_id, term))
                else:
                    self._drop(namespace, _sec_key(old_id, old_schema.labels[old_id]))
        schema = update.schema
        for node in sorted(update.touched):
            posting = schema.instances[node]
            self._rewrite_sec(namespace, _sec_key(node, schema.labels[node]), posting)
        for node in sorted(update.touched_terms):
            by_term = schema.term_instances.get(node, {})
            for term in sorted(update.touched_terms[node]):
                self._rewrite_sec(namespace, _sec_key(node, term), by_term.get(term, []))

    # ------------------------------------------------------------------
    # planner statistics
    # ------------------------------------------------------------------

    def update_stats(self, stats) -> None:
        """Persist the mutated generation's planner statistics segment
        (see :mod:`repro.storage.statcodec`).

        Rides the same commit frame as the index rewrites — the caller's
        single ``store.commit()`` makes tree, indexes, and statistics
        land or roll back together, so the segment is never half a
        generation ahead of the postings it describes.  No ``preserve``
        call: snapshot overlays never read statistics (each pinned
        engine state carries its own in-memory copy)."""
        from ..storage.statcodec import STATS_KEY, STATS_NAMESPACE, encode_stats

        Namespace(self._store, STATS_NAMESPACE).put(STATS_KEY, encode_stats(stats))

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _rewrite_sec(self, namespace: Namespace, key: bytes, posting: list) -> None:
        self._preserve(SEC_NAMESPACE, key, _old_sec_posting(namespace, key))
        self._write_or_delete(
            namespace, key, encode_instance_postings(posting) if posting else None
        )

    def _drop(self, namespace: Namespace, key: bytes) -> None:
        """Preserve-then-delete a stale key (missing keys are a no-op)."""
        old = _old_sec_posting(namespace, key)
        self._preserve(SEC_NAMESPACE, key, old)
        try:
            namespace.delete(key)
        except KeyNotFoundError:
            return
        self.keys_rewritten += 1
        _telemetry.count("mutation.keys_rewritten")

    def _write_or_delete(
        self, namespace: Namespace, key: bytes, encoded: "bytes | None"
    ) -> None:
        if encoded is None:
            try:
                namespace.delete(key)
            except KeyNotFoundError:
                return
        else:
            namespace.put(key, encoded)
        self.keys_rewritten += 1
        _telemetry.count("mutation.keys_rewritten")


def _old_node_posting(namespace: Namespace, key: bytes) -> list:
    try:
        return decode_node_postings(namespace.get(key))
    except KeyNotFoundError:
        return []


def _old_sec_posting(namespace: Namespace, key: bytes) -> list:
    try:
        return decode_instance_postings(namespace.get(key))
    except KeyNotFoundError:
        return []


def _node_entry(tree: DataTree, pre: int) -> tuple[int, int, int, int]:
    """The ``(pre, bound, pathcost, inscost)`` posting entry of a node,
    with the stored indexes' integer-cost requirement enforced."""
    pathcost = tree.pathcosts[pre]
    inscost = tree.inscosts[pre]
    int_pathcost = int(pathcost)
    int_inscost = int(inscost)
    if int_pathcost != pathcost or int_inscost != inscost:
        raise SchemaError(
            "stored indexes require integer insert costs; "
            f"got pathcost={pathcost}, inscost={inscost}"
        )
    return (pre, tree.bounds[pre], int_pathcost, int_inscost)


__all__ = ["MutationReport", "PreserveFn", "StoreMutator"]
