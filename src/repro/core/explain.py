"""Explaining ranked results: which transformations produced each match.

The schema-driven evaluator returns, for every result, the *skeleton* of
the embedding image (a second-level query).  Comparing the skeleton to
the original query recovers the cheapest transformation sequence behind
the result: renamings (skeleton label differs from the selector label),
leaf and inner-node deletions (selectors with no skeleton counterpart),
and insertions (the schema nodes on the path between two skeleton
nodes — the labels are read off the schema, so the explanation can say
*which* elements were implicitly inserted).

This is the user-facing "why did this match?" feature the cost-based
semantics makes possible; the derivation re-runs the transformation
search on the single skeleton (queries and skeletons are tiny), and the
derived cost is checked against the evaluator's cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..approxql.ast import AndExpr, NameSelector, OrExpr, QueryExpr, TextSelector
from ..approxql.costs import CostModel
from ..schema.dataguide import Schema
from ..schema.entries import SchemaEntry
from ..xmltree.model import NodeType

INFINITE = math.inf


@dataclass
class Explanation:
    """Human-readable derivation of one result."""

    root: int
    cost: float
    skeleton: str
    operations: list[str] = field(default_factory=list)
    #: True when the recovered operation sequence reproduces the
    #: evaluator's cost exactly (it should; ties may differ in wording)
    consistent: bool = True

    def format(self) -> str:
        """Multi-line human-readable rendering of the derivation."""
        lines = [f"result @{self.root} (cost {self.cost}):"]
        if not self.operations:
            lines.append("  exact match — no transformations needed")
        for operation in self.operations:
            lines.append(f"  - {operation}")
        return "\n".join(lines)


def explain_skeleton(
    query: NameSelector, entry: SchemaEntry, costs: CostModel, schema: Schema
) -> "tuple[float, list[str]]":
    """Cheapest derivation of ``entry``'s skeleton from ``query``.

    Returns ``(cost, operations)``; cost is infinite when the skeleton
    cannot be derived (which indicates an internal inconsistency).
    """
    deriver = _Deriver(costs, schema)
    cost, operations = deriver.derive_root(query, entry)
    return cost, operations


#: per derivation state: pointer-coverage bitmask -> (cost, operations)
_Candidates = dict


class _Deriver:
    """Recovers the cheapest transformation sequence turning the query
    into the skeleton.

    Every skeleton pointer must be *used* by at least one selector match
    (the skeleton IS the image of the embedding — an unused pointer would
    mean the explanation describes a different, cheaper skeleton), so
    derivations carry a coverage bitmask over the pointer set and only
    full-coverage derivations are accepted.
    """

    def __init__(self, costs: CostModel, schema: Schema) -> None:
        self._costs = costs
        self._schema = schema

    def derive_root(
        self, query: NameSelector, entry: SchemaEntry
    ) -> tuple[float, list[str]]:
        rename = self._label_cost(query.label, entry.label, NodeType.STRUCT)
        if rename is None:
            return INFINITE, []
        rename_cost, rename_ops = rename
        if query.content is None:
            if entry.pointers:
                return INFINITE, []
            return rename_cost, rename_ops
        content_cost, content_ops = self._best_covering(
            self._derive_expr(query.content, entry.pointers, entry.pre), entry.pointers
        )
        return rename_cost + content_cost, rename_ops + content_ops

    @staticmethod
    def _best_covering(
        candidates: _Candidates, pointers: tuple[SchemaEntry, ...]
    ) -> tuple[float, list[str]]:
        full_mask = (1 << len(pointers)) - 1
        best = candidates.get(full_mask)
        if best is None:
            return INFINITE, []
        return best

    # ------------------------------------------------------------------
    # candidate computation (mask -> cheapest (cost, ops))
    # ------------------------------------------------------------------

    def _derive_expr(
        self, expr: QueryExpr, pointers: tuple[SchemaEntry, ...], parent_class: int
    ) -> _Candidates:
        if isinstance(expr, (NameSelector, TextSelector)):
            return self._derive_selector(expr, pointers, parent_class)
        if isinstance(expr, AndExpr):
            combined: _Candidates = {0: (0.0, [])}
            for item in expr.items:
                item_candidates = self._derive_expr(item, pointers, parent_class)
                merged: _Candidates = {}
                for mask, (cost, ops) in combined.items():
                    for item_mask, (item_cost, item_ops) in item_candidates.items():
                        new_mask = mask | item_mask
                        new_cost = cost + item_cost
                        existing = merged.get(new_mask)
                        if existing is None or new_cost < existing[0]:
                            merged[new_mask] = (new_cost, ops + item_ops)
                combined = merged
                if not combined:
                    return {}
            return combined
        if isinstance(expr, OrExpr):
            union: _Candidates = {}
            for item in expr.items:
                for mask, (cost, ops) in self._derive_expr(
                    item, pointers, parent_class
                ).items():
                    existing = union.get(mask)
                    if existing is None or cost < existing[0]:
                        union[mask] = (cost, ops)
            return union
        return {}

    def _derive_selector(
        self,
        selector: "NameSelector | TextSelector",
        pointers: tuple[SchemaEntry, ...],
        parent_class: int,
    ) -> _Candidates:
        label, node_type, content = self._selector_parts(selector)
        candidates: _Candidates = {}

        def offer(mask: int, cost: float, ops: list[str]) -> None:
            existing = candidates.get(mask)
            if existing is None or cost < existing[0]:
                candidates[mask] = (cost, ops)

        # (a) match against one of the skeleton children
        for index, pointer in enumerate(pointers):
            match = self._derive_match(selector, pointer, parent_class)
            if match is not None:
                offer(1 << index, match[0], match[1])

        delete_cost = self._costs.delete_cost(label, node_type)
        if content is None:
            # (b) delete a leaf selector (covers no pointer)
            if delete_cost != INFINITE:
                kind = "term" if node_type == NodeType.TEXT else "selector"
                offer(0, delete_cost, [f"delete {kind} {label!r} (cost {_fmt(delete_cost)})"])
        elif delete_cost != INFINITE:
            # (c) delete an inner selector: its content hangs off the parent
            deletion_op = f"delete inner node {label!r} (cost {_fmt(delete_cost)})"
            for mask, (cost, ops) in self._derive_expr(
                content, pointers, parent_class
            ).items():
                offer(mask, delete_cost + cost, [deletion_op] + ops)
        return candidates

    def _derive_match(
        self,
        selector: "NameSelector | TextSelector",
        pointer: SchemaEntry,
        parent_class: int,
    ) -> "tuple[float, list[str]] | None":
        label, node_type, content = self._selector_parts(selector)
        rename = self._label_cost(label, pointer.label, node_type)
        if rename is None:
            return None
        rename_cost, ops = rename
        insertion_cost, insertion_ops = self._insertions(parent_class, pointer.pre)
        if insertion_cost is None:
            return None
        ops = insertion_ops + ops
        total = rename_cost + insertion_cost
        if content is not None:
            content_cost, content_ops = self._best_covering(
                self._derive_expr(content, pointer.pointers, pointer.pre),
                pointer.pointers,
            )
            if content_cost == INFINITE:
                return None
            total += content_cost
            ops = ops + content_ops
        elif pointer.pointers:
            # a leaf selector cannot explain a skeleton with children
            return None
        return total, ops

    # ------------------------------------------------------------------
    # pieces
    # ------------------------------------------------------------------

    @staticmethod
    def _selector_parts(
        selector: "NameSelector | TextSelector",
    ) -> tuple[str, NodeType, "QueryExpr | None"]:
        if isinstance(selector, TextSelector):
            return selector.word, NodeType.TEXT, None
        return selector.label, NodeType.STRUCT, selector.content

    def _label_cost(
        self, from_label: str, to_label: str, node_type: NodeType
    ) -> "tuple[float, list[str]] | None":
        if from_label == to_label:
            return 0.0, []
        cost = self._costs.rename_cost(from_label, to_label, node_type)
        if cost == INFINITE:
            return None
        return cost, [f"rename {from_label!r} to {to_label!r} (cost {_fmt(cost)})"]

    def _insertions(
        self, ancestor_class: int, descendant_class: int
    ) -> "tuple[float | None, list[str]]":
        """Labels and total cost of the schema nodes strictly between two
        classes — the implicitly inserted query nodes."""
        schema = self._schema
        if ancestor_class == descendant_class:
            return None, []
        labels: list[str] = []
        node = schema.parents[descendant_class]
        while node != -1 and node != ancestor_class:
            labels.append(schema.labels[node])
            node = schema.parents[node]
        if node != ancestor_class:
            return None, []
        if not labels:
            return 0.0, []
        labels.reverse()
        cost = sum(self._costs.insert_cost(label) for label in labels)
        rendered = ", ".join(repr(label) for label in labels)
        return cost, [f"insert {rendered} (cost {_fmt(cost)})"]


def _fmt(cost: float) -> str:
    return str(int(cost)) if cost == int(cost) else f"{cost:.2f}"
