"""Public façade: the :class:`Database` a downstream user adopts."""

from .database import Database
from .explain import Explanation, explain_skeleton
from .persist import FORMAT_VERSION, load_tree, save_tree
from .results import QueryResult

__all__ = [
    "Database",
    "Explanation",
    "FORMAT_VERSION",
    "QueryResult",
    "explain_skeleton",
    "load_tree",
    "save_tree",
]
