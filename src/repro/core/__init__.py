"""Public façade: the :class:`Database` a downstream user adopts."""

from .database import Database, QueryPlan
from .explain import Explanation, explain_skeleton
from .persist import FORMAT_VERSION, load_tree, save_tree
from .results import QueryResult, ResultSet, ResultStream

__all__ = [
    "Database",
    "Explanation",
    "FORMAT_VERSION",
    "QueryPlan",
    "QueryResult",
    "ResultSet",
    "ResultStream",
    "explain_skeleton",
    "load_tree",
    "save_tree",
]
