"""Query results as a downstream user sees them.

The evaluation algorithms return root-cost pairs; :class:`QueryResult`
wraps a pair together with the data tree so callers can inspect, render,
or re-serialize the matched subtree (the paper's final step: "the results
... belonging to the embedding roots are selected and retrieved to the
user").

:class:`ResultSet` is what :meth:`~repro.core.database.Database.query`
returns: a plain ``list`` of results (it compares equal to one) that also
carries the query's :class:`~repro.telemetry.report.QueryReport`.
:class:`ResultStream` is the streaming counterpart returned by
:meth:`~repro.core.database.Database.stream`, with a report that grows as
results are pulled.
"""

from __future__ import annotations

import time
from collections.abc import Iterator

from ..storage.overlay import SnapshotOverlay, using_overlay
from ..telemetry.collector import Telemetry, collecting
from ..telemetry.report import QueryReport
from ..xmltree.model import DataTree, NodeType
from ..xmltree.serialize import subtree_to_xml


class QueryResult:
    """One ranked result: the embedding root and its embedding cost."""

    __slots__ = ("root", "cost", "_tree")

    def __init__(self, root: int, cost: float, tree: DataTree) -> None:
        self.root = root
        self.cost = cost
        self._tree = tree

    @property
    def label(self) -> str:
        """Element name of the result root."""
        return self._tree.label(self.root)

    @property
    def similarity(self) -> float:
        """Cost mapped to a similarity score in (0, 1]: ``1 / (1 + cost)``.

        The paper ranks by cost directly; this standard transform is a
        convenience for interfaces that expect higher-is-better scores.
        The ordering is exactly the cost ordering, reversed.
        """
        return 1.0 / (1.0 + self.cost)

    @property
    def path(self) -> str:
        """Slash-separated label path from the collection root."""
        parts = [label for label, _ in self._tree.label_type_path(self.root)]
        return "/" + "/".join(parts)

    def words(self) -> list[str]:
        """All words in the result subtree, in document order."""
        tree = self._tree
        return [
            tree.label(pre)
            for pre in tree.subtree(self.root)
            if tree.node_type(pre) == NodeType.TEXT
        ]

    def outline(self, max_depth: int = 6) -> str:
        """Indented rendering of the result subtree."""
        return self._tree.format_subtree(self.root, max_depth=max_depth)

    def xml(self, indent: "int | None" = None) -> str:
        """Serialize the result subtree back to XML.

        The data-tree normalization is lossy (attributes became child
        elements, text was word-split), so this is a canonical rendering
        of the *normalized* subtree, not the original document bytes.
        """
        return subtree_to_xml(self._tree, self.root, indent=indent)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QueryResult):
            return NotImplemented
        return self.root == other.root and self.cost == other.cost

    def __hash__(self) -> int:
        return hash((self.root, self.cost))

    def __repr__(self) -> str:
        return f"QueryResult(root={self.root}, cost={self.cost}, label={self.label!r})"


class ResultSet(list):
    """The ranked results of one query, plus how they were computed.

    A ``list`` subclass, so every list operation — indexing, slicing,
    iteration, and crucially equality against a plain list of
    :class:`QueryResult` — behaves exactly as before the telemetry
    redesign.  On top of that it exposes:

    * :attr:`report` — the :class:`~repro.telemetry.report.QueryReport`
      (method chosen, per-stage counters, wall time);
    * :attr:`method` — shorthand for ``report.method``;
    * :attr:`costs` — the result costs as a plain list of floats.
    """

    __slots__ = ("report",)

    def __init__(self, results=(), report: "QueryReport | None" = None) -> None:
        super().__init__(results)
        self.report = report

    @property
    def method(self) -> "str | None":
        """The algorithm that produced the results (``"direct"`` or
        ``"schema"``), ``None`` when no report was attached."""
        return self.report.method if self.report is not None else None

    @property
    def costs(self) -> list[float]:
        """The embedding cost of each result, in rank order."""
        return [result.cost for result in self]

    def __repr__(self) -> str:
        return f"ResultSet({list.__repr__(self)}, method={self.method!r})"


class ResultStream:
    """Iterator over incrementally streamed results.

    Results arrive in increasing cost order (the Section 7.4 advantage of
    schema-driven evaluation).  :attr:`report` is live: its counters and
    wall time grow as results are pulled, so a consumer that stops early
    sees exactly what the evaluation did up to that point.

    A stream over a stored database is pinned to the generation it was
    opened against: the stream holds the snapshot overlay and re-activates
    it around every pull, because a context manager entered inside the
    suspended generator would leak the thread-local to the caller between
    pulls.  ``on_close`` runs once — at exhaustion or :meth:`close` —
    releasing the pin.
    """

    __slots__ = ("report", "_iterator", "_telemetry", "_overlay", "_on_close")

    def __init__(
        self,
        iterator: Iterator[QueryResult],
        report: QueryReport,
        telemetry: "Telemetry | None" = None,
        overlay: "SnapshotOverlay | None" = None,
        on_close=None,
    ) -> None:
        self._iterator = iterator
        self.report = report
        self._telemetry = telemetry
        self._overlay = overlay
        self._on_close = on_close

    @property
    def method(self) -> str:
        return self.report.method

    def __iter__(self) -> "ResultStream":
        return self

    def close(self) -> None:
        """Release the stream's snapshot pin (idempotent; also called
        automatically at exhaustion)."""
        on_close, self._on_close = self._on_close, None
        if on_close is not None:
            on_close()

    def __next__(self) -> QueryResult:
        start = time.perf_counter()
        try:
            if self._telemetry is None:
                try:
                    with using_overlay(self._overlay):
                        result = next(self._iterator)
                finally:
                    self.report.wall_seconds += time.perf_counter() - start
            else:
                with collecting(self._telemetry):
                    try:
                        with using_overlay(self._overlay):
                            result = next(self._iterator)
                    finally:
                        self.report.wall_seconds += time.perf_counter() - start
        except StopIteration:
            self.close()
            raise
        self.report.results += 1
        return result
