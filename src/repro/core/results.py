"""Query results as a downstream user sees them.

The evaluation algorithms return root-cost pairs; :class:`QueryResult`
wraps a pair together with the data tree so callers can inspect, render,
or re-serialize the matched subtree (the paper's final step: "the results
... belonging to the embedding roots are selected and retrieved to the
user").
"""

from __future__ import annotations

from ..xmltree.model import DataTree, NodeType
from ..xmltree.serialize import subtree_to_xml


class QueryResult:
    """One ranked result: the embedding root and its embedding cost."""

    __slots__ = ("root", "cost", "_tree")

    def __init__(self, root: int, cost: float, tree: DataTree) -> None:
        self.root = root
        self.cost = cost
        self._tree = tree

    @property
    def label(self) -> str:
        """Element name of the result root."""
        return self._tree.label(self.root)

    @property
    def similarity(self) -> float:
        """Cost mapped to a similarity score in (0, 1]: ``1 / (1 + cost)``.

        The paper ranks by cost directly; this standard transform is a
        convenience for interfaces that expect higher-is-better scores.
        The ordering is exactly the cost ordering, reversed.
        """
        return 1.0 / (1.0 + self.cost)

    @property
    def path(self) -> str:
        """Slash-separated label path from the collection root."""
        parts = [label for label, _ in self._tree.label_type_path(self.root)]
        return "/" + "/".join(parts)

    def words(self) -> list[str]:
        """All words in the result subtree, in document order."""
        tree = self._tree
        return [
            tree.label(pre)
            for pre in tree.subtree(self.root)
            if tree.node_type(pre) == NodeType.TEXT
        ]

    def outline(self, max_depth: int = 6) -> str:
        """Indented rendering of the result subtree."""
        return self._tree.format_subtree(self.root, max_depth=max_depth)

    def xml(self, indent: "int | None" = None) -> str:
        """Serialize the result subtree back to XML.

        The data-tree normalization is lossy (attributes became child
        elements, text was word-split), so this is a canonical rendering
        of the *normalized* subtree, not the original document bytes.
        """
        return subtree_to_xml(self._tree, self.root, indent=indent)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QueryResult):
            return NotImplemented
        return self.root == other.root and self.cost == other.cost

    def __hash__(self) -> int:
        return hash((self.root, self.cost))

    def __repr__(self) -> str:
        return f"QueryResult(root={self.root}, cost={self.cost}, label={self.label!r})"
