"""The database façade: build a collection, query it many ways, mutate it
while queries keep running.

This is the public entry point a downstream user adopts::

    db = Database.from_xml(xml_one, xml_two)
    results = db.query('cd[title["piano"]]', n=10, costs=my_costs)
    root = db.insert_document("<cd><title>new disc</title></cd>").root
    db.delete_document(root)

Both of the paper's algorithms are available per query (``method="direct"``
or ``"schema"``); the default ``"auto"`` chooses through the cost-based
planner (:mod:`repro.planner`): selectivity estimates over persisted
collection statistics score direct vs schema-driven evaluation per query,
falling out of the paper's conclusion — schema-driven for best-n, direct
for full retrieval — wherever the statistics agree with it.
:meth:`Database.plan` exposes that decision without
running the query; ``collect="counters"`` (or ``"timings"``) makes
:meth:`Database.query` return a :class:`~repro.core.results.ResultSet`
whose :class:`~repro.telemetry.report.QueryReport` accounts for every
page read, posting decoded, and second-level query executed.

Mutation and snapshot reads (MVCC-lite)
---------------------------------------
:meth:`Database.insert_document` / :meth:`~Database.delete_document` /
:meth:`~Database.replace_document` mutate the collection at document
granularity, incrementally maintaining the pre/bound encoding, the
stored indexes, and the DataGuide — see ``docs/MUTATION.md``.  Every
query runs against one immutable *engine state* (tree view + schema +
evaluators) pinned at its start; a writer builds the successor state
copy-on-write and publishes it atomically, so readers never block and
never observe half a mutation.  :meth:`Database.snapshot` pins a state
explicitly — the returned :class:`Snapshot` keeps answering queries
against its generation while writers move the database forward.
"""

from __future__ import annotations

import threading
import time
import warnings
import weakref
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from ..approxql.ast import NameSelector, count_or_operators, count_selectors
from ..approxql.costs import CostModel
from ..approxql.parser import parse_query
from ..concurrent import QueryPool, make_query_pool, resolve_jobs
from ..engine.evaluator import DirectEvaluator
from ..errors import EvaluationError
from ..planner.cost import PlanEstimates, Planner
from ..planner.stats import CollectionStats, compute_stats
from ..querycache import (
    CachedResult,
    CompiledQuery,
    CompiledQueryCache,
    ResultCache,
)
from ..schema.dataguide import (
    Schema,
    build_schema,
    update_schema_for_delete,
    update_schema_for_insert,
)
from ..schema.evaluator import EvaluationStats, SchemaEvaluator, effective_schedule
from ..schema.indexes import StoredSecondaryIndex
from ..storage.kv import MemoryStore, Store
from ..storage.overlay import SnapshotOverlay, using_overlay
from ..storage.statcodec import (
    load_planner_state,
    load_stats,
    save_planner_state,
    save_stats,
)
from ..telemetry import collector as _telemetry
from ..telemetry.collector import MODE_OFF, MODE_TIMINGS, MODES, Telemetry
from ..telemetry.report import QueryReport
from ..xmltree.builder import BuildOptions, CollectionBuilder, tree_from_xml
from ..xmltree.indexes import MemoryNodeIndexes, NodeIndexes, StoredNodeIndexes
from ..xmltree.model import DataTree, compact_tree
from .explain import Explanation, explain_skeleton
from .mutation import MutationReport, StoreMutator, _node_entry
from .persist import (
    StoreOptions,
    append_tree_segment,
    load_tree,
    open_file_store,
    save_dead_roots,
    save_tree,
)
from .results import QueryResult, ResultSet, ResultStream

_METHODS = ("auto", "direct", "schema")


@dataclass(frozen=True)
class QueryPlan:
    """The ``"auto"`` method-selection decision, made public.

    :meth:`Database.plan` returns one of these instead of burying the
    choice inside :meth:`Database.query`: the chosen algorithm, why it
    was chosen, and a summary of the parsed query (the quantities the
    paper's complexity bounds are phrased in).
    """

    query: str
    method: str
    requested: str
    reason: str
    n: "int | None"
    root_label: str
    selectors: int
    or_decisions: int
    conjunctive_queries: int
    #: the cost model's numbers behind the decision (predicted candidate
    #: roots, posting bytes, the chosen k-growth schedule, confidence)
    estimates: "PlanEstimates | None" = None

    def format(self, verbose: bool = False) -> str:
        """Human-readable rendering for the CLI's ``plan`` command;
        ``verbose`` appends the estimates block."""
        n_label = "all" if self.n is None else str(self.n)
        lines = [
            f"plan: {self.query}",
            f"  method: {self.method} ({self.reason})",
            f"  n: {n_label}  root: {self.root_label}",
            f"  selectors: {self.selectors}  or-decisions: {self.or_decisions}  "
            f"conjunctive queries: {self.conjunctive_queries}",
        ]
        if verbose and self.estimates is not None:
            lines.append(self.estimates.format())
        return "\n".join(lines)


def build_query_plan(
    query: NameSelector,
    n: "int | None",
    requested: str,
    chosen: str,
    reason: str,
    estimates: "PlanEstimates | None",
) -> QueryPlan:
    """Assemble a :class:`QueryPlan` from one planner decision — shared
    by :meth:`Database.plan` and the sharded façade so both render the
    identical plan for identical data."""
    or_decisions = count_or_operators(query)
    return QueryPlan(
        query=query.unparse(),
        method=chosen,
        requested=requested,
        reason=reason,
        n=n,
        root_label=query.label,
        selectors=count_selectors(query),
        or_decisions=or_decisions,
        conjunctive_queries=2**or_decisions,
        estimates=estimates,
    )


class _EngineState:
    """One immutable generation of the engine: the tree view, schema, and
    evaluators a query (or pinned snapshot) runs against.

    States are swapped atomically by the writer; a reader grabs the
    current state once and uses only it.  The tree *object* is shared
    across generations (a graft appends at the tail, a delete only
    tombstones), so the state additionally freezes the two quantities
    that do move: ``node_count`` and the live ``documents`` tuple.

    The components of the newest memory-backed state build lazily (the
    first query pays, exactly as before mutation existed); the writer
    fully materializes the current state before touching the shared
    arrays, so a *superseded* state is never lazy and never observes the
    grown tree.
    """

    __slots__ = (
        "generation",
        "tree",
        "node_count",
        "documents",
        "schema",
        "node_indexes",
        "secondary",
        "direct",
        "schema_evaluator",
        "stats",
        "_lock",
    )

    def __init__(
        self,
        generation: int,
        tree: DataTree,
        schema: "Schema | None" = None,
        node_indexes: "NodeIndexes | None" = None,
        secondary: "StoredSecondaryIndex | None" = None,
        direct: "DirectEvaluator | None" = None,
        schema_evaluator: "SchemaEvaluator | None" = None,
        stats: "CollectionStats | None" = None,
    ) -> None:
        self.generation = generation
        self.tree = tree
        self.node_count = len(tree)
        self.documents: tuple[int, ...] = tuple(tree.document_roots())
        self.schema = schema
        self.node_indexes = node_indexes
        self.secondary = secondary
        self.direct = direct
        self.schema_evaluator = schema_evaluator
        self.stats = stats
        self._lock = threading.Lock()

    # Lazy accessors use double-checked locking: slot reads are atomic
    # under CPython, the lock only serializes construction.  Dependencies
    # are built *before* taking the lock so it never nests.

    def ensure_node_indexes(self) -> NodeIndexes:
        if self.node_indexes is None:
            with self._lock:
                if self.node_indexes is None:
                    self.node_indexes = MemoryNodeIndexes(self.tree)
        return self.node_indexes

    def ensure_schema(self) -> Schema:
        if self.schema is None:
            evaluator = self.schema_evaluator
            built = None
            if evaluator is None or evaluator.schema is None:
                built = build_schema(self.tree)
            with self._lock:
                if self.schema is None:
                    if evaluator is not None and evaluator.schema is not None:
                        self.schema = evaluator.schema
                    else:
                        self.schema = built
        return self.schema

    def direct_evaluator(self) -> DirectEvaluator:
        if self.direct is None:
            indexes = self.ensure_node_indexes()
            with self._lock:
                if self.direct is None:
                    self.direct = DirectEvaluator(self.tree, indexes)
        return self.direct

    def schema_eval(self) -> SchemaEvaluator:
        if self.schema_evaluator is None:
            schema = self.ensure_schema()
            with self._lock:
                if self.schema_evaluator is None:
                    self.schema_evaluator = SchemaEvaluator(
                        self.tree, schema, secondary_index=self.secondary
                    )
        return self.schema_evaluator

    def ensure_stats(self) -> CollectionStats:
        """The planner statistics of *this* generation (computed lazily
        for a fresh in-memory build, preloaded from the stats segment
        for an opened store, maintained incrementally by mutations)."""
        if self.stats is None:
            schema = self.ensure_schema()
            with self._lock:
                if self.stats is None:
                    self.stats = compute_stats(
                        self.tree, schema, generation=self.generation
                    )
        return self.stats

    def materialize(self) -> None:
        """Build every lazy component now (the writer calls this before
        mutating the shared tree)."""
        self.ensure_node_indexes()
        self.ensure_schema()
        self.direct_evaluator()
        self.schema_eval()
        self.ensure_stats()


class Snapshot:
    """A read view pinned to one generation of a :class:`Database`.

    Obtained from :meth:`Database.snapshot`; every query method answers
    against the pinned generation even while writers mutate the database
    concurrently — for a stored database the writer preserves each
    pre-mutation posting into this snapshot's overlay before overwriting
    it (see :mod:`repro.storage.overlay`).  Close the snapshot (or use it
    as a context manager) when done; an open snapshot keeps accumulating
    preserved values while writers run.
    """

    def __init__(
        self,
        database: "Database",
        state: _EngineState,
        overlay: "SnapshotOverlay | None",
    ) -> None:
        self._database = database
        self._state = state
        self._overlay = overlay
        self._closed = False

    # -- pinned facts ---------------------------------------------------

    @property
    def generation(self) -> int:
        """The database generation this snapshot serves."""
        return self._state.generation

    @property
    def node_count(self) -> int:
        return self._state.node_count

    @property
    def documents(self) -> tuple[int, ...]:
        """Root pre numbers of the live documents at the pinned generation."""
        return self._state.documents

    # -- querying (the Database signatures, against the pinned state) ---

    def query(
        self,
        text: "str | NameSelector",
        n: "int | None" = 10,
        costs: "CostModel | None" = None,
        method: str = "auto",
        max_cost: "float | None" = None,
        collect: str = "off",
        jobs: "int | None" = None,
        executor: str = "thread",
    ) -> ResultSet:
        """:meth:`Database.query` against the pinned generation.

        ``executor="process"`` works under the pin: the shared-memory
        ``I_sec`` export is built *under* this snapshot's overlay, so
        process workers serve exactly the pinned generation (the export
        is query-private when the overlay is non-empty).
        """
        self._check_open()
        with using_overlay(self._overlay):
            return self._database._query_impl(
                self._state, text, n, costs, method, max_cost, None, collect, jobs,
                executor,
            )

    def count_results(
        self, text: "str | NameSelector", costs: "CostModel | None" = None
    ) -> int:
        """:meth:`Database.count_results` against the pinned generation."""
        self._check_open()
        with using_overlay(self._overlay):
            return self._database._count_impl(self._state, text, costs)

    def stream(
        self,
        text: "str | NameSelector",
        costs: "CostModel | None" = None,
        initial_k: "int | None" = None,
        delta: "int | None" = None,
        collect: str = "off",
    ) -> ResultStream:
        """:meth:`Database.stream` against the pinned generation.

        The stream borrows this snapshot's pin: keep the snapshot open
        while pulling results.
        """
        self._check_open()
        return self._database._stream_impl(
            self._state, self._overlay, None, text, costs, initial_k, delta, collect
        )

    def explain(
        self,
        text: "str | NameSelector",
        n: "int | None" = 5,
        costs: "CostModel | None" = None,
    ) -> list[Explanation]:
        """:meth:`Database.explain` against the pinned generation."""
        self._check_open()
        with using_overlay(self._overlay):
            return self._database._explain_impl(self._state, text, n, costs)

    def plan(
        self,
        text: "str | NameSelector",
        n: "int | None" = 10,
        method: str = "auto",
        costs: "CostModel | None" = None,
    ) -> QueryPlan:
        """:meth:`Database.plan`, answered with the *current* generation's
        statistics (the planner decides per generation; a pinned snapshot
        still evaluates whatever the plan says against its own view)."""
        self._check_open()
        return self._database.plan(text, n=n, method=method, costs=costs)

    def describe(self) -> str:
        """One-line summary of the collection at the pinned generation."""
        self._check_open()
        schema = self._state.ensure_schema()
        return (
            f"Snapshot of generation {self.generation}: "
            f"{self.node_count} data nodes, {len(schema)} schema nodes, "
            f"{len(self.documents)} documents"
        )

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Release the pin (idempotent).  Queries on a closed snapshot
        raise a typed error."""
        if not self._closed:
            self._closed = True
            self._database._release(self._overlay)

    def _check_open(self) -> None:
        if self._closed:
            raise EvaluationError("snapshot is closed")

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        status = "closed" if self._closed else "open"
        return f"Snapshot(generation={self.generation}, {status})"


class Database:
    """A queryable, mutable collection of XML documents.

    Create instances through :meth:`from_xml`, :meth:`from_tree`, or
    :meth:`open`; the constructor wires an already-built tree.
    """

    def __init__(
        self,
        tree: DataTree,
        default_costs: "CostModel | None" = None,
        _stored: bool = False,
        _direct: "DirectEvaluator | None" = None,
        _schema_evaluator: "SchemaEvaluator | None" = None,
        _frozen_fingerprint: "str | None" = None,
    ) -> None:
        schema = None
        if _schema_evaluator is not None and _schema_evaluator.schema is not None:
            schema = _schema_evaluator.schema
        self._state = _EngineState(
            0, tree, schema=schema, direct=_direct, schema_evaluator=_schema_evaluator
        )
        self._default_costs = default_costs if default_costs is not None else CostModel()
        self._planner = Planner()
        # the two-tier hot-query fast path (see repro.querycache):
        # compiled queries (Tier 1) and generation-tagged best-n result
        # prefixes (Tier 2); resize or disable via set_query_cache()
        self._compiled_cache = CompiledQueryCache()
        self._result_cache = ResultCache()
        self._stored = _stored
        self._frozen_fingerprint = _frozen_fingerprint
        #: the file store behind an opened database (None when in-memory)
        self._store: "Store | None" = None
        self._store_options: "StoreOptions | None" = None
        self._store_path: "str | None" = None
        self._posting_cache = None
        self._closed = False
        # Mutation machinery.  One writer at a time (_write_lock); the
        # overlay lock orders snapshot pinning against the writer's
        # preserve-then-write steps (see _pin / _preserve).
        self._write_lock = threading.Lock()
        self._overlay_lock = threading.Lock()
        self._overlays: "weakref.WeakSet[SnapshotOverlay]" = weakref.WeakSet()
        self._pending: "dict[tuple[bytes, bytes], object] | None" = None
        self._failed: "str | None" = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_xml(
        cls,
        *documents: str,
        options: "BuildOptions | None" = None,
        default_costs: "CostModel | None" = None,
    ) -> "Database":
        """Build a database from XML document strings."""
        builder = CollectionBuilder(options)
        for document in documents:
            builder.add_xml_fragment(document)
        return cls(builder.finish(), default_costs)

    @classmethod
    def from_documents(
        cls,
        documents: Iterable[str],
        options: "BuildOptions | None" = None,
        default_costs: "CostModel | None" = None,
    ) -> "Database":
        """Build a database from an iterable of XML document strings."""
        builder = CollectionBuilder(options)
        for document in documents:
            builder.add_xml(document)
        return cls(builder.finish(), default_costs)

    @classmethod
    def from_tree(cls, tree: DataTree, default_costs: "CostModel | None" = None) -> "Database":
        """Wrap an already-built data tree (e.g. from the generator)."""
        return cls(tree, default_costs)

    @classmethod
    def from_directory(
        cls,
        directory: str,
        pattern: str = "*.xml",
        options: "BuildOptions | None" = None,
        default_costs: "CostModel | None" = None,
    ) -> "Database":
        """Build a database from every matching file in ``directory``
        (sorted by name for deterministic preorder numbers)."""
        import pathlib

        builder = CollectionBuilder(options)
        paths = sorted(pathlib.Path(directory).glob(pattern))
        if not paths:
            raise EvaluationError(f"no files matching {pattern!r} in {directory!r}")
        for path in paths:
            builder.add_xml_fragment(path.read_text(encoding="utf-8"))
        return cls(builder.finish(), default_costs)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def save(
        self,
        path: str,
        options: "StoreOptions | None" = None,
        *,
        durability: "str | None" = None,
        wal_checkpoint_bytes: "int | None" = None,
    ) -> None:
        """Persist the tree and every index into a single-file store.

        Everything is staged in memory first and bulk-loaded into the
        B+tree in one sorted pass — the fast path for building read-mostly
        index files.  A mutated collection is vacuumed on the way out:
        tombstoned documents are compacted away, so the saved file is as
        dense as a fresh build (reopening it assigns new pre numbers when
        documents were deleted).

        ``options`` is the shared :class:`~repro.core.persist.StoreOptions`
        keyword surface; the explicit ``durability`` /
        ``wal_checkpoint_bytes`` keywords override its fields for callers
        that only need those.  ``durability="wal"`` routes the build
        through the write-ahead log: a build killed at any I/O boundary
        leaves either the finished store or a cleanly empty one, never a
        half-written file.  The default ``"none"`` writes straight
        through (fastest; an interrupted build must be re-run).
        """
        options = (options or StoreOptions()).merged(
            durability=durability, wal_checkpoint_bytes=wal_checkpoint_bytes
        )
        with self._write_lock:
            self._check_failed()
            state = self._state
            costs = self._default_costs
            tree = compact_tree(state.tree)
            tree.encode_costs(costs.insert_cost, fingerprint=costs.insert_fingerprint)
            if tree is state.tree:
                schema = state.ensure_schema()
            else:
                schema = build_schema(tree)
            schema.encode_costs(costs.insert_cost, fingerprint=costs.insert_fingerprint)
            staging = MemoryStore()
            save_tree(tree, staging, costs)
            StoredNodeIndexes.build(tree, staging)
            StoredSecondaryIndex.build(schema, staging)
            save_stats(staging, compute_stats(tree, schema, generation=0))
            if self._planner.corrections:
                save_planner_state(
                    staging, self._planner.correction, self._planner.corrections
                )
            with open_file_store(path, options) as store:
                store.bulk_load(list(staging.scan()))
                store.sync()

    @classmethod
    def open(
        cls,
        path: str,
        options: "StoreOptions | None" = None,
        *,
        page_cache_pages: "int | None" = None,
        posting_cache_bytes: "int | None" = None,
        durability: "str | None" = None,
        wal_checkpoint_bytes: "int | None" = None,
        page_size: "int | None" = None,
        numpy_kernel: "bool | None" = None,
        compiled_cache_entries: "int | None" = None,
        result_cache_entries: "int | None" = None,
    ) -> "Database":
        """Open a saved database; posting fetches go to the file store.

        The one entry point for stored databases (the historical
        :meth:`load` is a deprecated alias).  A missing, empty, or
        non-database file raises a typed
        :class:`~repro.errors.StorageError` naming the path and reason.
        If the store crashed while in WAL durability mode, its log is
        recovered before anything is read — committed batches are
        replayed, uncommitted ones rolled back — in *every* durability
        mode.

        ``options`` is the single keyword surface for every storage knob
        (:class:`~repro.core.persist.StoreOptions`), shared verbatim with
        :meth:`save` and the CLI.  The explicit keywords override its
        fields, so existing call sites keep working:

        ``page_cache_pages``
            Capacity of the pager's LRU page cache (the buffer-pool role
            Berkeley DB plays in the paper's §8 setup).  ``0`` disables
            it; ``None`` keeps the default
            (:data:`~repro.storage.pager.DEFAULT_CACHE_PAGES`).
        ``posting_cache_bytes``
            Byte budget of the shared decoded-posting cache reused
            across queries (and across the best-*n* driver's rounds).
            ``0`` disables it; ``None`` keeps the default
            (:data:`~repro.storage.cache.DEFAULT_POSTING_CACHE_BYTES`).
        ``durability``
            Crash story for writes made through this handle — document
            mutations above all: ``"wal"`` makes each mutation one
            atomic commit frame, the default ``"none"`` matches the
            historical engine byte for byte.  ``wal_checkpoint_bytes``
            sizes the log-fold trigger.

        With both cache knobs at ``0`` the read path is byte-identical
        to the uncached engine.

        ``compiled_cache_entries`` / ``result_cache_entries`` size the
        two hot-query caches (compiled queries and generation-tagged
        best-n result prefixes — see ``docs/PERFORMANCE.md``); ``0``
        disables a tier, ``None`` keeps the defaults.  Answers are
        byte-identical either way.

        ``numpy_kernel`` flips the process-wide numpy fast path for
        whole-column engine passes (see ``docs/PERFORMANCE.md``):
        ``True`` enables it (inert without numpy installed), ``False``
        forces the pure-python kernels, ``None`` (default) leaves the
        ``REPRO_NUMPY`` environment setting alone.  Results are
        bit-identical either way; the flag is forwarded to process-pool
        workers.
        """
        from ..engine.columns import set_numpy_kernel
        from ..storage.cache import DEFAULT_POSTING_CACHE_BYTES, PostingCache

        if numpy_kernel is not None:
            set_numpy_kernel(bool(numpy_kernel))

        options = (options or StoreOptions()).merged(
            page_cache_pages=page_cache_pages,
            posting_cache_bytes=posting_cache_bytes,
            durability=durability,
            wal_checkpoint_bytes=wal_checkpoint_bytes,
            page_size=page_size,
            compiled_cache_entries=compiled_cache_entries,
            result_cache_entries=result_cache_entries,
        )
        store = open_file_store(path, options, must_exist=True)
        cache_bytes = options.posting_cache_bytes
        if cache_bytes is None:
            cache_bytes = DEFAULT_POSTING_CACHE_BYTES
        posting_cache = PostingCache(cache_bytes) if cache_bytes else None
        tree, insert_costs, fingerprint = load_tree(store)
        node_indexes = StoredNodeIndexes(store, posting_cache)
        secondary = StoredSecondaryIndex(store, posting_cache)
        schema = build_schema(tree)
        schema.encode_costs(insert_costs.insert_cost, fingerprint=insert_costs.insert_fingerprint)
        database = cls(
            tree,
            default_costs=insert_costs,
            _stored=True,
            _frozen_fingerprint=fingerprint,
        )
        # Trust the persisted stats segment only when its node counts
        # match the loaded tree (a mismatched segment means it went
        # stale somehow — recompute lazily instead of planning on it).
        stats = load_stats(store)
        if stats is not None and not (
            stats.node_count == len(tree)
            and stats.live_node_count == tree.live_node_count
        ):
            stats = None
        database._state = _EngineState(
            0,
            tree,
            schema=schema,
            node_indexes=node_indexes,
            secondary=secondary,
            direct=DirectEvaluator(tree, node_indexes),
            schema_evaluator=SchemaEvaluator(tree, schema, secondary_index=secondary),
            stats=stats.with_generation(0) if stats is not None else None,
        )
        database._store = store
        database._store_options = options
        database._store_path = path
        database._posting_cache = posting_cache
        if options.compiled_cache_entries is not None:
            database._compiled_cache = CompiledQueryCache(options.compiled_cache_entries)
        if options.result_cache_entries is not None:
            database._result_cache = ResultCache(options.result_cache_entries)
        planner_state = load_planner_state(store)
        if planner_state is not None:
            database._planner.seed(*planner_state)
        return database

    @classmethod
    def load(cls, path: str, *args, **kwargs) -> "Database":
        """Deprecated alias of :meth:`open` (the historical name)."""
        warnings.warn(
            "Database.load is deprecated; use Database.open (same arguments)",
            DeprecationWarning,
            stacklevel=2,
        )
        return cls.open(path, *args, **kwargs)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    @property
    def tree(self) -> DataTree:
        return self._state.tree

    @property
    def schema(self) -> Schema:
        """The compacted DataGuide of the collection (built lazily)."""
        return self._state.ensure_schema()

    @property
    def node_count(self) -> int:
        """Total nodes in the arrays, tombstones included (see
        :attr:`live_node_count` for the queryable population)."""
        return len(self._state.tree)

    @property
    def live_node_count(self) -> int:
        """Nodes belonging to live documents, super-root included."""
        return self._state.tree.live_node_count

    @property
    def generation(self) -> int:
        """Number of mutations published so far (0 for a fresh build)."""
        return self._state.generation

    def documents(self) -> tuple[int, ...]:
        """Root pre numbers of the live documents, in insertion order."""
        return self._state.documents

    def describe(self) -> str:
        """One-paragraph summary of the collection."""
        state = self._state
        schema = state.ensure_schema()
        summary = (
            f"Database: {state.node_count} data nodes, {len(schema)} schema nodes, "
            f"{len(state.documents)} documents"
        )
        dead = len(state.tree.dead_roots)
        if dead:
            summary += f", {dead} tombstoned"
        if state.generation:
            summary += f", generation {state.generation}"
        store = self._store
        if store is not None and getattr(store, "durability", "none") == "wal":
            summary += ", wal durability"
        return summary

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release the database's storage resources (idempotent).

        The posting cache is shut down first — its shared-memory segment
        registry destroys every ``/dev/shm`` segment it still holds,
        pinned or retired, so open/close cycles in a long-running process
        never leak kernel memory — then the file store handle is closed.
        For an in-memory database this is a no-op.  Queries issued after
        close fail from the closed store; don't close a database other
        threads are still querying.
        """
        if self._closed:
            return
        if self._planner.corrections:
            # a query-only session still gets to keep what it learned
            self._persist_planner_state()
        self._closed = True
        cache = self._posting_cache
        if cache is not None:
            cache.shutdown()
        if self._store is not None:
            self._store.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # snapshot pinning (MVCC-lite)
    # ------------------------------------------------------------------

    def snapshot(self) -> Snapshot:
        """Pin the current generation for reading.

        The returned :class:`Snapshot` answers every query against this
        generation even while :meth:`insert_document` /
        :meth:`delete_document` / :meth:`replace_document` move the
        database forward: the writer preserves each pre-mutation posting
        into the snapshot's overlay before overwriting it (stored
        databases), and in-memory databases pin the immutable engine
        state directly.  Close the snapshot when done.
        """
        self._check_failed()
        state, overlay = self._pin()
        return Snapshot(self, state, overlay)

    def _pin(self) -> "tuple[_EngineState, SnapshotOverlay | None]":
        """The current state plus, for stored databases, a registered
        overlay seeded with whatever an in-flight mutation has already
        preserved — so pinning mid-mutation still yields the previous
        generation's complete view."""
        if self._store is None:
            return self._state, None
        with self._overlay_lock:
            state = self._state
            overlay = SnapshotOverlay(state.generation)
            if self._pending:
                for (tag, key), value in self._pending.items():
                    overlay.preserve(tag, key, value)
            self._overlays.add(overlay)
        return state, overlay

    def _release(self, overlay: "SnapshotOverlay | None") -> None:
        if overlay is None:
            return
        with self._overlay_lock:
            self._overlays.discard(overlay)

    def _preserve(self, tag: bytes, key: bytes, value: object) -> None:
        """Writer-side copy-on-write: pin ``key``'s old decoded value into
        every registered overlay (and the in-flight seed) before the
        store write lands."""
        with self._overlay_lock:
            if self._pending is not None:
                self._pending.setdefault((tag, key), value)
            for overlay in self._overlays:
                overlay.preserve(tag, key, value)

    def _check_failed(self) -> None:
        if self._failed is not None:
            raise EvaluationError(
                f"database is unusable after a failed {self._failed} mutation "
                "(the store may hold an uncommitted half-write); reopen it to "
                "recover the last committed state"
            )

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def insert_document(
        self, xml: str, options: "BuildOptions | None" = None
    ) -> MutationReport:
        """Add one XML document to the collection, online.

        The document's nodes are grafted at the tail of the preorder (no
        existing node is renumbered), the touched index postings and
        DataGuide classes are maintained incrementally, and — for a
        stored database — every write lands in one WAL commit frame.
        Queries running concurrently keep their pinned view.  Returns a
        :class:`~repro.core.mutation.MutationReport` whose ``root`` is
        the new document's root pre number.
        """
        document = tree_from_xml(xml, options=options)
        return self._mutate("insert", document=document)

    def delete_document(self, root: int) -> MutationReport:
        """Remove the document rooted at pre number ``root``, online.

        The document is tombstoned — its nodes stay as holes in the
        preorder, so no survivor is renumbered — and filtered out of
        every index posting and DataGuide instance list; emptied classes
        keep their ids.  :meth:`save` compacts tombstones away.
        """
        return self._mutate("delete", remove_root=root)

    def replace_document(
        self, root: int, xml: str, options: "BuildOptions | None" = None
    ) -> MutationReport:
        """Atomically replace the document at ``root`` with ``xml`` — a
        delete and an insert published as one generation (and, for a
        stored database, one commit frame)."""
        document = tree_from_xml(xml, options=options)
        return self._mutate("replace", document=document, remove_root=root)

    def _mutate(
        self,
        action: str,
        document: "DataTree | None" = None,
        remove_root: "int | None" = None,
    ) -> MutationReport:
        started = time.perf_counter()
        with self._write_lock:
            self._check_failed()
            state = self._state
            # A superseded state must never be lazy: build everything
            # before the shared arrays change.
            state.materialize()
            tree = state.tree
            costs = self._default_costs
            tree.encode_costs(costs.insert_cost, fingerprint=costs.insert_fingerprint)
            if remove_root is not None:
                self._check_document_root(tree, remove_root)
            stored = self._store is not None
            start = len(tree)
            new_root: "int | None" = None
            nodes_removed = 0
            schema = state.schema
            delete_update = insert_update = None
            grafted = marked = False
            keys_rewritten = 0
            if stored:
                with self._overlay_lock:
                    self._pending = {}
            try:
                if remove_root is not None:
                    nodes_removed = tree.bounds[remove_root] - remove_root + 1
                    tree.mark_dead(remove_root)
                    marked = True
                    delete_update = update_schema_for_delete(schema, tree, remove_root)
                    schema = delete_update.schema
                if document is not None:
                    new_root = tree.graft_document(document, costs.insert_cost)
                    grafted = True
                    insert_update = update_schema_for_insert(schema, tree, start)
                    schema = insert_update.schema
                added = range(start, len(tree)) if document is not None else None
                removed = (
                    (remove_root, tree.bounds[remove_root])
                    if remove_root is not None
                    else None
                )
                # planner statistics move with the same deltas the index
                # maintenance consumes; materialize() above guaranteed
                # the superseded state's stats exist
                new_stats = state.stats.apply_mutation(
                    tree, added, removed, schema, state.generation + 1
                )
                if stored:
                    if added is not None:
                        # integer-cost check before the first store write
                        for pre in added:
                            _node_entry(tree, pre)
                    mutator = StoreMutator(self._store, self._preserve)
                    mutator.update_node_postings(tree, added=added, removed=removed)
                    if delete_update is not None:
                        mutator.update_secondary(state.schema, delete_update)
                    if insert_update is not None:
                        base = (
                            delete_update.schema
                            if delete_update is not None
                            else state.schema
                        )
                        mutator.update_secondary(base, insert_update)
                    if added is not None:
                        append_tree_segment(tree, self._store, start)
                    if removed is not None:
                        save_dead_roots(tree, self._store)
                    mutator.update_stats(new_stats)
                    if self._planner.corrections:
                        # learned corrections ride the same commit frame
                        save_planner_state(
                            self._store,
                            self._planner.correction,
                            self._planner.corrections,
                        )
                    # THE commit point: everything above is one WAL frame.
                    self._store.commit()
                    keys_rewritten = mutator.keys_rewritten
                    schema.encode_costs(
                        costs.insert_cost, fingerprint=costs.insert_fingerprint
                    )
                    node_indexes: NodeIndexes = state.node_indexes
                    secondary = state.secondary
                else:
                    node_indexes = MemoryNodeIndexes.evolve(
                        state.node_indexes, tree, added=added, removed=removed
                    )
                    secondary = None
            except BaseException:
                if stored:
                    # The store may hold uncommitted half-writes in btree
                    # memory; poison the handle so no reader trusts it.
                    # Reopening recovers the last committed state.
                    self._failed = action
                    with self._overlay_lock:
                        self._pending = None
                else:
                    if grafted:
                        tree.ungraft(start)
                    if marked:
                        tree.dead_roots.discard(remove_root)
                raise
            new_state = _EngineState(
                state.generation + 1,
                tree,
                schema=schema,
                node_indexes=node_indexes,
                secondary=secondary,
                direct=DirectEvaluator(tree, node_indexes),
                schema_evaluator=SchemaEvaluator(
                    tree, schema, secondary_index=secondary
                ),
                stats=new_stats,
            )
            with self._overlay_lock:
                self._state = new_state
                self._pending = None
            _telemetry.count(f"mutation.{action}s")
            nodes_added = len(tree) - start if document is not None else 0
            if nodes_added:
                _telemetry.count("mutation.nodes_added", nodes_added)
            if nodes_removed:
                _telemetry.count("mutation.nodes_removed", nodes_removed)
            return MutationReport(
                action=action,
                generation=new_state.generation,
                root=new_root,
                removed_root=remove_root,
                nodes_added=nodes_added,
                nodes_removed=nodes_removed,
                classes_added=insert_update.classes_added if insert_update else 0,
                schema_renumbered=bool(insert_update and insert_update.renumbered),
                keys_rewritten=keys_rewritten,
                wall_seconds=time.perf_counter() - started,
            )

    @staticmethod
    def _check_document_root(tree: DataTree, root: int) -> None:
        if root <= 0 or root >= len(tree) or tree.parents[root] != 0:
            raise EvaluationError(
                f"pre {root} is not a document root (see Database.documents())"
            )
        if root in tree.dead_roots:
            raise EvaluationError(f"document at pre {root} was already deleted")

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------

    def query(
        self,
        text: "str | NameSelector",
        n: "int | None" = 10,
        costs: "CostModel | None" = None,
        method: str = "auto",
        max_cost: "float | None" = None,
        stats: "EvaluationStats | None" = None,
        collect: str = "off",
        jobs: "int | None" = None,
        executor: str = "thread",
    ) -> ResultSet:
        """Evaluate an approXQL query and return the best ``n`` results.

        ``n=None`` retrieves every approximate result; ``max_cost`` drops
        results costlier than the bound.  ``method`` picks the algorithm:
        ``"direct"`` (Section 6), ``"schema"`` (Section 7), or ``"auto"``
        (the cost-based planner decides from collection statistics; see
        :meth:`plan` and ``docs/PLANNER.md``).

        The query runs against the generation current at its start: a
        concurrent mutation neither blocks it nor leaks half-applied
        postings into it (see :meth:`snapshot` for pinning one generation
        across many queries).

        ``collect`` controls telemetry: ``"off"`` (default) attaches a
        report with only the method and wall time, ``"counters"`` fills
        the per-stage counters (pages read, postings decoded, second-level
        queries, ...), ``"timings"`` additionally records per-stage wall
        times.  The returned :class:`~repro.core.results.ResultSet`
        compares equal to a plain list of results and carries the report
        as ``.report``.

        ``jobs > 1`` runs the schema-driven driver's second-level queries
        on that many workers (results identical to serial; see
        :mod:`repro.concurrent`).  ``jobs`` may be negative — one worker
        per CPU — and ``executor`` picks the backend: ``"thread"`` (the
        default) or ``"process"``, which evaluates on real cores against
        a read-only shared-memory export of ``I_sec`` and degrades to
        threads where process pools are unavailable (counting
        ``concurrency.process_fallback``).  The direct algorithm ignores
        both — its one primary evaluation has no independent work units.

        ``stats`` is a deprecation shim for the pre-telemetry
        :class:`~repro.schema.evaluator.EvaluationStats` hook; prefer
        ``collect="counters"`` and the returned report.
        """
        state, overlay = self._pin()
        try:
            with using_overlay(overlay):
                return self._query_impl(
                    state, text, n, costs, method, max_cost, stats, collect, jobs,
                    executor,
                )
        finally:
            self._release(overlay)

    def _query_impl(
        self,
        state: _EngineState,
        text: "str | NameSelector",
        n: "int | None",
        costs: "CostModel | None",
        method: str,
        max_cost: "float | None",
        stats: "EvaluationStats | None",
        collect: str,
        jobs: "int | None",
        executor: str = "thread",
    ) -> ResultSet:
        self._check_failed()
        compiled, compiled_hit = self._compile(text, costs)
        query, resolved_costs = compiled.query, compiled.costs
        chosen, _, estimates = self._plan_choice(
            state, method, n, query, resolved_costs, compiled=compiled
        )
        if collect not in MODES:
            raise EvaluationError(f"unknown collect mode {collect!r}; expected one of {MODES}")
        if stats is not None:
            warnings.warn(
                "Database.query(stats=...) is deprecated; pass collect='counters' "
                "and read the schema.* counters off ResultSet.report",
                DeprecationWarning,
                stacklevel=3,
            )
        telemetry = Telemetry(timed=collect == MODE_TIMINGS) if collect != MODE_OFF else None
        schedule = (
            (estimates.initial_k, estimates.delta)
            if chosen == "schema" and estimates is not None
            else (None, None)
        )
        start = time.perf_counter()
        if telemetry is None:
            results = self._evaluate_cached(
                state, compiled, chosen, n, max_cost, stats, jobs,
                executor, initial_k=schedule[0], delta=schedule[1],
            )
        else:
            with _telemetry.collecting(telemetry):
                results = self._evaluate_cached(
                    state, compiled, chosen, n, max_cost, stats, jobs,
                    executor, initial_k=schedule[0], delta=schedule[1],
                )
        wall_seconds = time.perf_counter() - start
        report = QueryReport.from_telemetry(
            telemetry,
            query=query.unparse(),
            method=chosen,
            collect=collect,
            n=n,
            wall_seconds=wall_seconds,
            results=len(results),
        )
        if collect != MODE_OFF and self._compiled_cache.enabled:
            name = "querycache.compiled_hits" if compiled_hit else "querycache.compiled_misses"
            report.counters[name] = report.counters.get(name, 0) + 1
        if estimates is not None:
            corrected = self._planner.observe(estimates, len(results), n)
            _attach_planner_counters(
                report, estimates, len(results), corrected, self._planner
            )
        return ResultSet(results, report)

    def query_many(
        self,
        queries: Iterable,
        n: "int | None" = 10,
        costs: "CostModel | None" = None,
        max_cost: "float | None" = None,
        method: str = "auto",
        collect: str = "off",
        jobs: "int | None" = None,
        executor: str = "thread",
    ) -> list[ResultSet]:
        """Evaluate a batch of independent queries; one
        :class:`~repro.core.results.ResultSet` per query, in input order.

        Each item of ``queries`` is query text (or a parsed selector),
        or a ``(text, cost_model)`` pair overriding ``costs`` for that
        query.  ``jobs > 1`` serves the batch from a worker pool with
        that many workers (``-1``: one per CPU); every query still
        collects its own telemetry, so the reports are exactly what a
        serial run would attach.  Results are identical to calling
        :meth:`query` in a loop.

        ``executor="process"`` serves the batch on a
        :class:`~repro.concurrent.ProcessQueryPool` — real cores, one
        query per task.  Each worker gets its own read view (a stored
        database is re-opened by path; an in-memory database is
        fork-inherited) and ships back only ``(root, cost)`` pairs plus
        the report, which are re-bound to this process's tree.  When no
        safe per-worker view exists (WAL-mode store, no ``fork`` start
        method for in-memory data), the batch degrades to threads and
        counts ``concurrency.process_fallback``.

        One pool run, one insert-cost table: encoding a different insert
        table rewrites shared per-node cost arrays on the tree and the
        schema, so a batch mixing insert fingerprints is *grouped* by
        fingerprint and each group batches on the pool in turn (see
        ``docs/CONCURRENCY.md``).  Only a query left alone in its group
        runs serially, and it says so: its report carries a
        ``concurrency.batch_fallback = 1`` counter (in every ``collect``
        mode) so callers can detect the lost parallelism.
        """
        if executor not in ("thread", "process"):
            raise EvaluationError(
                f"executor must be 'thread' or 'process', got {executor!r}"
            )
        resolved: list[tuple[NameSelector, CostModel]] = []
        for item in queries:
            if isinstance(item, tuple):
                text, item_costs = item
                resolved.append(self._resolve(text, item_costs if item_costs is not None else costs))
            else:
                resolved.append(self._resolve(item, costs))
        jobs = resolve_jobs(jobs)
        if jobs == 1 or len(resolved) < 2:
            return [
                self.query(
                    query, n=n, costs=query_costs, method=method,
                    max_cost=max_cost, collect=collect,
                )
                for query, query_costs in resolved
            ]
        groups: dict[str, list[int]] = {}
        for index, (_, query_costs) in enumerate(resolved):
            groups.setdefault(repr(query_costs.insert_fingerprint), []).append(index)
        if len(groups) == 1:
            return self._query_group(resolved, n, max_cost, method, collect, jobs, executor)
        # Mixed insert fingerprints: each fingerprint group still batches
        # on the pool (the shared arrays are re-encoded once per group),
        # instead of the whole batch degrading to serial.
        _telemetry.count("concurrency.batch_groups", len(groups))
        output: "list[ResultSet | None]" = [None] * len(resolved)
        fallback_counted = False
        for indices in groups.values():
            if len(indices) > 1:
                group_results = self._query_group(
                    [resolved[i] for i in indices], n, max_cost, method,
                    collect, jobs, executor,
                )
                for index, result in zip(indices, group_results):
                    output[index] = result
            else:
                index = indices[0]
                query, query_costs = resolved[index]
                result = self.query(
                    query, n=n, costs=query_costs, method=method,
                    max_cost=max_cost, collect=collect,
                )
                if not fallback_counted:
                    _telemetry.count("concurrency.batch_fallback")
                    fallback_counted = True
                result.report.counters["concurrency.batch_fallback"] = 1
                output[index] = result
        return output

    def _query_group(
        self,
        items: "list[tuple[NameSelector, CostModel]]",
        n: "int | None",
        max_cost: "float | None",
        method: str,
        collect: str,
        jobs: int,
        executor: str,
    ) -> list[ResultSet]:
        """Serve one uniform-fingerprint batch on a worker pool — the
        body of :meth:`query_many` once grouping is done.

        The group's one insert-cost table is encoded and the lazy
        evaluators built up front, on this thread: the workers' encode
        calls then see a matching fingerprint and never write the shared
        arrays, and no two workers race to build the same evaluator."""
        state = self._state
        shared = items[0][1]
        state.tree.encode_costs(shared.insert_cost, fingerprint=shared.insert_fingerprint)
        chosen, _ = self._choose_method(method, n)
        if chosen == "direct":
            state.direct_evaluator()
        else:
            schema_evaluator = state.schema_eval()
            if schema_evaluator.schema is not None:
                schema_evaluator.schema.encode_costs(
                    shared.insert_cost, fingerprint=shared.insert_fingerprint
                )

        def _serve(item: "tuple[NameSelector, CostModel]") -> ResultSet:
            query, query_costs = item
            return self.query(
                query, n=n, costs=query_costs, method=method,
                max_cost=max_cost, collect=collect,
            )

        if executor == "process":
            setup, cleanup = self._batch_worker_setup()
            if setup is not None:
                try:
                    pool = make_query_pool(jobs, "process", setup)
                    with pool:
                        if isinstance(pool, QueryPool):
                            # process pool unavailable; make_query_pool
                            # already counted the fallback
                            return pool.map_ordered(_serve, items)
                        payload_items = [
                            (query.unparse(), query_costs, n, max_cost, method, collect)
                            for query, query_costs in items
                        ]
                        payloads = pool.map_ordered(_serve_process_query, payload_items)
                finally:
                    cleanup()
                tree = state.tree
                return [
                    ResultSet(
                        [QueryResult(root, cost, tree) for root, cost in pairs],
                        report,
                    )
                    for pairs, report in payloads
                ]
            _telemetry.count("concurrency.process_fallback")
        with QueryPool(jobs) as pool:
            return pool.map_ordered(_serve, items)

    def _batch_worker_setup(self):
        """The process-pool worker setup for :meth:`query_many`, plus a
        cleanup callback; ``(None, ...)`` when no safe per-worker read
        view exists and the batch must fall back to threads.

        * Stored database in ``durability="none"`` mode: workers re-open
          the file by path (own store handle, own caches) after a sync
          flushes this handle's pending writes.  WAL mode is excluded —
          a worker's open would run log recovery against the parent's
          live WAL.
        * In-memory database under the ``fork`` start method: workers
          inherit this object through the fork snapshot (it never
          pickles — see :mod:`repro.concurrent.process`).
        """
        from ..concurrent.process import (
            ForkInheritedSetup,
            StoredDatabaseSetup,
            default_start_method,
            register_fork_object,
            unregister_fork_object,
        )

        if self._store is not None:
            if (
                self._store_path is not None
                and getattr(self._store, "durability", "none") == "none"
            ):
                self._store.sync()
                return StoredDatabaseSetup(self._store_path, self._store_options), _noop
            return None, _noop
        if default_start_method() != "fork":
            return None, _noop
        token = register_fork_object(self)
        return ForkInheritedSetup(token), (lambda: unregister_fork_object(token))

    def stream(
        self,
        text: "str | NameSelector",
        costs: "CostModel | None" = None,
        initial_k: "int | None" = None,
        delta: "int | None" = None,
        collect: str = "off",
    ) -> ResultStream:
        """Incrementally stream results in increasing cost order — the
        Section 7.4 advantage of the schema-driven evaluation.

        Returns a :class:`~repro.core.results.ResultStream` whose
        ``.report`` is live: with ``collect`` enabled its counters grow
        as results are pulled, so stopping early shows exactly what the
        evaluation did so far.  The stream stays pinned to the generation
        current at its creation — pulls interleaved with mutations keep
        yielding that generation's results.
        """
        self._check_failed()
        state, overlay = self._pin()
        try:
            return self._stream_impl(
                state,
                overlay,
                (lambda: self._release(overlay)) if overlay is not None else None,
                text,
                costs,
                initial_k,
                delta,
                collect,
            )
        except BaseException:
            self._release(overlay)
            raise

    def _stream_impl(
        self,
        state: _EngineState,
        overlay: "SnapshotOverlay | None",
        on_close,
        text: "str | NameSelector",
        costs: "CostModel | None",
        initial_k: "int | None",
        delta: "int | None",
        collect: str,
    ) -> ResultStream:
        query, resolved_costs = self._resolve(text, costs)
        if collect not in MODES:
            raise EvaluationError(f"unknown collect mode {collect!r}; expected one of {MODES}")
        telemetry = Telemetry(timed=collect == MODE_TIMINGS) if collect != MODE_OFF else None
        report = QueryReport(
            query=query.unparse(),
            method="schema",
            collect=collect,
            n=None,
            counters=telemetry.counters if telemetry is not None else {},
            timings=telemetry.timings if telemetry is not None else {},
        )
        iterator = self._iter_stream(state, query, resolved_costs, initial_k, delta)
        return ResultStream(iterator, report, telemetry, overlay=overlay, on_close=on_close)

    def _iter_stream(
        self,
        state: _EngineState,
        query: NameSelector,
        costs: CostModel,
        initial_k: "int | None",
        delta: "int | None",
    ) -> Iterator[QueryResult]:
        for result in state.schema_eval().iter_results(
            query, costs, initial_k=initial_k, delta=delta
        ):
            yield QueryResult(result.root, result.cost, state.tree)

    def plan(
        self,
        text: "str | NameSelector",
        n: "int | None" = 10,
        method: str = "auto",
        costs: "CostModel | None" = None,
    ) -> QueryPlan:
        """Explain which algorithm :meth:`query` would run — the
        ``"auto"`` selection decision, public instead of buried — plus a
        summary of the parsed query and the cost model's ``estimates``
        block (predicted candidates, posting bytes, chosen schedule).
        ``costs`` matters: renamings widen the selector closures the
        estimates are computed from."""
        compiled, _ = self._compile(text, costs)
        chosen, reason, estimates = self._plan_choice(
            self._state, method, n, compiled.query, compiled.costs,
            want_estimates=True, compiled=compiled,
        )
        return build_query_plan(compiled.query, n, method, chosen, reason, estimates)

    def count_results(self, text: "str | NameSelector", costs: "CostModel | None" = None) -> int:
        """Total number of approximate results for the query.

        Uses the direct evaluator's counting fast path: the embedding
        costs are computed once, but no result objects are materialized
        and no sort is performed.  Resolution (parsing, cost-model
        validation, the stored database's frozen-fingerprint check) is
        the exact :meth:`query` path, so identical inputs raise identical
        typed errors from both.
        """
        state, overlay = self._pin()
        try:
            with using_overlay(overlay):
                return self._count_impl(state, text, costs)
        finally:
            self._release(overlay)

    def _count_impl(
        self, state: _EngineState, text: "str | NameSelector", costs: "CostModel | None"
    ) -> int:
        self._check_failed()
        query, resolved_costs = self._resolve(text, costs)
        return state.direct_evaluator().count(query, resolved_costs)

    def suggest_costs(self, options=None) -> CostModel:
        """Derive a cost model from the collection itself (the paper's
        declared future work): spelling-variant and sibling renamings,
        depth-aware delete costs, frequency-based insert costs.  See
        :func:`repro.approxql.suggest_cost_model`."""
        from ..approxql.suggest import suggest_cost_model

        state = self._state
        return suggest_cost_model(
            MemoryNodeIndexes(state.tree), state.ensure_schema(), options
        )

    def explain(
        self,
        text: "str | NameSelector",
        n: "int | None" = 5,
        costs: "CostModel | None" = None,
    ) -> list[Explanation]:
        """Best-``n`` results with the transformation sequence that
        produced each (renamings, deletions, and the implicitly inserted
        element labels read off the schema)."""
        state, overlay = self._pin()
        try:
            with using_overlay(overlay):
                return self._explain_impl(state, text, n, costs)
        finally:
            self._release(overlay)

    def _explain_impl(
        self,
        state: _EngineState,
        text: "str | NameSelector",
        n: "int | None",
        costs: "CostModel | None",
    ) -> list[Explanation]:
        self._check_failed()
        query, resolved_costs = self._resolve(text, costs)
        schema = state.ensure_schema()
        explanations: list[Explanation] = []
        for result in state.schema_eval().iter_results(query, resolved_costs):
            assert result.skeleton is not None
            derived_cost, operations = explain_skeleton(
                query, result.skeleton, resolved_costs, schema
            )
            explanations.append(
                Explanation(
                    root=result.root,
                    cost=result.cost,
                    skeleton=result.skeleton.format_skeleton(),
                    operations=operations,
                    consistent=derived_cost == result.cost,
                )
            )
            if n is not None and len(explanations) >= n:
                break
        return explanations

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _compile(
        self, text: "str | NameSelector", costs: "CostModel | None"
    ) -> tuple[CompiledQuery, bool]:
        """Tier-1 resolution: the compiled (parsed, fingerprinted, and
        lazily expanded) form of ``(text, costs)`` plus whether the
        compiled-query cache served it.  The stored database's frozen-
        fingerprint check runs on *every* call — cached entries are not
        exempt from it."""
        resolved = costs if costs is not None else self._default_costs
        compiled, hit = self._compiled_cache.get(text, resolved)
        self._check_insert_costs(compiled.costs)
        return compiled, hit

    def _resolve(
        self, text: "str | NameSelector", costs: "CostModel | None"
    ) -> tuple[NameSelector, CostModel]:
        """Parse the query text and resolve the effective cost model
        (validating it against a stored database's baked-in costs).

        Every query-shaped entry point — :meth:`query`, :meth:`query_many`,
        :meth:`count_results`, :meth:`stream`, :meth:`explain`,
        :meth:`plan` — resolves through here (via the compiled-query
        cache), so identical inputs raise identical typed errors
        regardless of the method called.
        """
        compiled, _ = self._compile(text, costs)
        return compiled.query, compiled.costs

    def _choose_method(self, method: str, n: "int | None") -> tuple[str, str]:
        """Query-independent method resolution — the paper's coarse
        conclusion, kept only where no parsed query is in hand yet (the
        :meth:`query_many` evaluator pre-warm); every real evaluation
        decides through :meth:`_plan_choice` and the statistics-driven
        cost model instead."""
        if method not in _METHODS:
            raise EvaluationError(f"unknown method {method!r}; expected one of {_METHODS}")
        if method != "auto":
            return method, f"explicitly requested method={method!r}"
        if n is None:
            return (
                "direct",
                "auto: full retrieval (n=None) favors the direct algorithm (Section 6)",
            )
        return (
            "schema",
            f"auto: best-n retrieval (n={n}) favors the schema-driven algorithm (Section 7)",
        )

    def _plan_choice(
        self,
        state: _EngineState,
        method: str,
        n: "int | None",
        query: NameSelector,
        costs: CostModel,
        want_estimates: bool = False,
        compiled: "CompiledQuery | None" = None,
    ) -> "tuple[str, str, PlanEstimates | None]":
        """The planner-backed method decision for one parsed query.

        An explicit method skips estimation unless ``want_estimates``
        asks for the numbers anyway (:meth:`plan` does, so ``plan
        --verbose`` shows them for every method).  With a ``compiled``
        query in hand the decision is memoized per (generation, n,
        method, correction) — re-planning a hot query is a dict hit."""
        if method not in _METHODS:
            raise EvaluationError(f"unknown method {method!r}; expected one of {_METHODS}")
        if method != "auto" and not want_estimates:
            return method, f"explicitly requested method={method!r}", None
        memo_key = None
        if compiled is not None:
            memo_key = (state.generation, n, method, self._planner.correction)
            decision = compiled.cached_plan(memo_key)
            if decision is not None:
                return decision
        decision = self._planner.choose(
            query, costs, state.ensure_stats(), n, method=method
        )
        if memo_key is not None:
            compiled.store_plan(memo_key, decision)
        return decision

    def collection_stats(self) -> CollectionStats:
        """The planner statistics of the current generation (see
        ``docs/PLANNER.md``): per-label/term posting lengths, DataGuide
        shape, document count and depth histogram."""
        return self._state.ensure_stats()

    def query_cache_stats(self) -> dict[str, int]:
        """Lifetime ``querycache.*`` counters of both hot-query cache
        tiers (compiled queries and best-n result prefixes); the server
        merges these into its ``stats`` reply."""
        merged = self._compiled_cache.stats()
        merged.update(self._result_cache.stats())
        return merged

    def set_query_cache(
        self,
        compiled_entries: "int | None" = None,
        result_entries: "int | None" = None,
    ) -> None:
        """Resize (or disable, with ``0``) the hot-query caches of this
        handle.  ``None`` leaves a tier untouched.  Replacing a tier
        drops its entries and lifetime counters; answers are
        byte-identical at every setting."""
        if compiled_entries is not None:
            self._compiled_cache = CompiledQueryCache(compiled_entries)
        if result_entries is not None:
            self._result_cache = ResultCache(result_entries)

    def _persist_planner_state(self) -> None:
        """Best-effort write of the planner's learned correction so it
        survives reopen even when no mutation ever commits it (the
        mutation path persists it inside its own frame; this one runs on
        ``close``).  A standalone commit is a valid WAL frame; failures
        are swallowed — losing a correction only costs re-learning it.
        Deliberately *not* called on the query path: a store write bumps
        the store generation, which would blanket-invalidate the posting
        and result caches under a pure read workload."""
        if self._store is None:
            return
        with self._write_lock:
            if self._failed is not None or self._closed:
                return
            try:
                save_planner_state(
                    self._store, self._planner.correction, self._planner.corrections
                )
                self._store.commit()
            except Exception:
                pass

    def autotune_kernel(self) -> int:
        """Apply the planner's RMQ-crossover suggestion for this
        collection to the process-wide kernel setting and return it.

        The crossover is a correctness-neutral performance knob (results
        are identical either side of it), but the setting is process
        global — it is applied here, explicitly, rather than per query,
        where concurrent evaluations on other collections would race the
        flip.  Returns the value now in force; restore with
        :func:`repro.engine.columns.set_rmq_crossover` if needed."""
        from ..engine.columns import set_rmq_crossover

        suggested = self._planner.suggested_rmq_crossover(self._state.ensure_stats())
        set_rmq_crossover(suggested)
        return suggested

    def _evaluate(
        self,
        state: _EngineState,
        chosen: str,
        query: NameSelector,
        costs: CostModel,
        n: "int | None",
        max_cost: "float | None",
        stats: "EvaluationStats | None",
        jobs: "int | None" = None,
        executor: str = "thread",
        initial_k: "int | None" = None,
        delta: "int | None" = None,
        expanded=None,
    ) -> list[QueryResult]:
        if chosen == "direct":
            raw = state.direct_evaluator().evaluate(
                query, costs, n=n, max_cost=max_cost, expanded=expanded
            )
        else:
            raw = state.schema_eval().evaluate(
                query, costs, n=n, max_cost=max_cost, stats=stats, jobs=jobs,
                executor=executor, initial_k=initial_k, delta=delta,
                expanded=expanded,
            )
        with _telemetry.timer("core.materialize"):
            results = [QueryResult(result.root, result.cost, state.tree) for result in raw]
        _telemetry.count("core.results_materialized", len(results))
        return results

    def _evaluate_cached(
        self,
        state: _EngineState,
        compiled: CompiledQuery,
        chosen: str,
        n: "int | None",
        max_cost: "float | None",
        stats: "EvaluationStats | None",
        jobs: "int | None" = None,
        executor: str = "thread",
        initial_k: "int | None" = None,
        delta: "int | None" = None,
    ) -> list[QueryResult]:
        """Tier-2 evaluation: serve a best-``n`` request from the cached
        result prefix of this (query, costs, method, max_cost) at this
        generation, resume the schema driver past a shorter prefix, or
        evaluate cold and cache what came out.

        For the schema method the key also carries the *effective*
        ``(initial_k, delta)`` schedule: within a cost class the driver
        emits ties in round order, so two schedules can order the same
        answer set differently — a cached prefix is byte-identical to a
        cold run only inside its own schedule class.  The planner's
        schedule depends on ``n`` and its learned correction, so a hot
        repeat (same query, same ``n``, unchanged correction) hits, while
        a request that would have re-run the driver differently misses
        honestly instead of serving a reordered tie class.  The direct
        method emits the canonical ``(cost, root)`` sort, so its key is
        schedule-free and any shorter ``n`` is served from a longer
        cached answer.
        """
        cache = self._result_cache
        if not cache.enabled or stats is not None:
            return self._evaluate(
                state, chosen, compiled.query, compiled.costs, n, max_cost,
                stats, jobs, executor, initial_k=initial_k, delta=delta,
                expanded=compiled.expanded(),
            )
        if chosen == "schema":
            key = (compiled.key, chosen, max_cost, effective_schedule(n, initial_k, delta))
        else:
            key = (compiled.key, chosen, max_cost)
        # The invalidation authority is the *store's* write counter, the
        # same one the posting cache keys on: any write — a routed
        # mutation, WAL recovery, or an out-of-band put through the store
        # handle — moves it, and pairing it with the published state
        # generation keeps a pinned snapshot's reads in their own
        # generation class.  Snapshotted before evaluation, so a write
        # landing mid-query stamps the entry with the generation whose
        # postings the query actually read.
        if self._store is None:
            generation: "int | tuple" = state.generation
        else:
            generation = (state.generation, self._store.generation)
        tree = state.tree
        entry = cache.lookup(key, generation)
        if entry is not None and entry.serves(n):
            pairs = entry.pairs if n is None else entry.pairs[:n]
            with _telemetry.timer("core.materialize"):
                results = [QueryResult(root, cost, tree) for root, cost in pairs]
            _telemetry.count("core.results_materialized", len(results))
            return results
        if chosen == "schema":
            resume = entry.state if entry is not None and entry.state is not None else None
            if resume is not None:
                cache.note_resume()
            captured: list = []
            raw = state.schema_eval().evaluate(
                compiled.query, compiled.costs, n=n, max_cost=max_cost,
                jobs=jobs, executor=executor, initial_k=initial_k, delta=delta,
                expanded=compiled.expanded(), resume=resume,
                state_sink=captured.append,
            )
            prefix = list(entry.pairs) if resume is not None else []
            pairs = prefix + [(result.root, result.cost) for result in raw]
            captured_state = captured[0] if captured else None
            complete = bool(captured_state is not None and captured_state.exhausted)
            cache.store(
                key,
                CachedResult(
                    generation=generation,
                    pairs=pairs,
                    complete=complete,
                    state=None if complete else captured_state,
                ),
            )
        else:
            raw = state.direct_evaluator().evaluate(
                compiled.query, compiled.costs, n=n, max_cost=max_cost,
                expanded=compiled.expanded(),
            )
            pairs = [(result.root, result.cost) for result in raw]
            complete = n is None or len(pairs) < n
            cache.store(
                key,
                CachedResult(generation=generation, pairs=pairs, complete=complete),
            )
        serve = pairs if n is None else pairs[:n]
        with _telemetry.timer("core.materialize"):
            results = [QueryResult(root, cost, tree) for root, cost in serve]
        _telemetry.count("core.results_materialized", len(results))
        return results

    def _check_insert_costs(self, costs: CostModel) -> None:
        if self._stored and repr(costs.insert_fingerprint) != self._frozen_fingerprint:
            raise EvaluationError(
                "this database was loaded from disk with baked-in insert costs; "
                "queries must use the same insert-cost table (build an in-memory "
                "Database for per-query insert costs)"
            )


def _attach_planner_counters(
    report: QueryReport,
    estimates: PlanEstimates,
    observed: int,
    corrected_now: bool,
    planner: Planner,
) -> None:
    """Write the predicted-vs-observed ``planner.*`` family directly on
    the report whenever collection is active (``collect="off"`` keeps
    its documented empty-counters contract)."""
    if report.collect == "off":
        return
    counters = report.counters
    counters["planner.predicted_candidates"] = estimates.candidate_roots
    counters["planner.predicted_entries"] = estimates.posting_entries
    counters["planner.observed_results"] = observed
    counters["planner.closure_width"] = estimates.mean_closure_width
    counters["planner.stats_generation"] = estimates.stats_generation
    if estimates.corrected:
        counters["planner.estimate_corrected"] = 1
    if corrected_now:
        counters["planner.mispredictions"] = 1
    if planner.corrections:
        counters["planner.corrections"] = planner.corrections


def _noop() -> None:
    """Cleanup placeholder for worker setups that own nothing."""


def _serve_process_query(item):
    """Worker body of a process-pool :meth:`Database.query_many` batch:
    serve one query on the worker's own database (its setup spec opened
    or fork-inherited it — see ``Database._batch_worker_setup``) and
    return a slim picklable payload, ``(root, cost)`` pairs plus the
    report, which the parent re-binds to its own tree."""
    from ..concurrent.process import worker_context

    text, costs, n, max_cost, method, collect = item
    database = worker_context()
    result = database.query(
        text, n=n, costs=costs, method=method, max_cost=max_cost, collect=collect
    )
    return [(entry.root, entry.cost) for entry in result], result.report
