"""The database façade: build a collection once, query it many ways.

This is the public entry point a downstream user adopts::

    db = Database.from_xml(xml_one, xml_two)
    results = db.query('cd[title["piano"]]', n=10, costs=my_costs)

Both of the paper's algorithms are available per query (``method="direct"``
or ``"schema"``); the default ``"auto"`` follows the paper's conclusion —
schema-driven evaluation for best-n retrieval, direct evaluation when all
results are wanted.  :meth:`Database.plan` exposes that decision without
running the query; ``collect="counters"`` (or ``"timings"``) makes
:meth:`Database.query` return a :class:`~repro.core.results.ResultSet`
whose :class:`~repro.telemetry.report.QueryReport` accounts for every
page read, posting decoded, and second-level query executed.
"""

from __future__ import annotations

import time
import warnings
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from ..approxql.ast import NameSelector, count_or_operators, count_selectors
from ..approxql.costs import CostModel
from ..approxql.parser import parse_query
from ..concurrent import QueryPool, resolve_jobs
from ..engine.evaluator import DirectEvaluator
from ..errors import EvaluationError
from ..schema.dataguide import Schema, build_schema
from ..schema.evaluator import EvaluationStats, SchemaEvaluator
from ..schema.indexes import StoredSecondaryIndex
from ..storage.kv import MemoryStore, Store
from ..telemetry import collector as _telemetry
from ..telemetry.collector import MODE_OFF, MODE_TIMINGS, MODES, Telemetry
from ..telemetry.report import QueryReport
from ..xmltree.builder import BuildOptions, CollectionBuilder
from ..xmltree.indexes import MemoryNodeIndexes, StoredNodeIndexes
from ..xmltree.model import DataTree
from .explain import Explanation, explain_skeleton
from .persist import load_tree, open_file_store, save_tree
from .results import QueryResult, ResultSet, ResultStream

_METHODS = ("auto", "direct", "schema")


@dataclass(frozen=True)
class QueryPlan:
    """The ``"auto"`` method-selection decision, made public.

    :meth:`Database.plan` returns one of these instead of burying the
    choice inside :meth:`Database.query`: the chosen algorithm, why it
    was chosen, and a summary of the parsed query (the quantities the
    paper's complexity bounds are phrased in).
    """

    query: str
    method: str
    requested: str
    reason: str
    n: "int | None"
    root_label: str
    selectors: int
    or_decisions: int
    conjunctive_queries: int

    def format(self) -> str:
        """Human-readable rendering for the CLI's ``plan`` command."""
        n_label = "all" if self.n is None else str(self.n)
        lines = [
            f"plan: {self.query}",
            f"  method: {self.method} ({self.reason})",
            f"  n: {n_label}  root: {self.root_label}",
            f"  selectors: {self.selectors}  or-decisions: {self.or_decisions}  "
            f"conjunctive queries: {self.conjunctive_queries}",
        ]
        return "\n".join(lines)


class Database:
    """A queryable collection of XML documents.

    Create instances through :meth:`from_xml`, :meth:`from_tree`, or
    :meth:`load`; the constructor wires an already-built tree.
    """

    def __init__(
        self,
        tree: DataTree,
        default_costs: "CostModel | None" = None,
        _stored: bool = False,
        _direct: "DirectEvaluator | None" = None,
        _schema_evaluator: "SchemaEvaluator | None" = None,
        _frozen_fingerprint: "str | None" = None,
    ) -> None:
        self._tree = tree
        self._default_costs = default_costs if default_costs is not None else CostModel()
        self._stored = _stored
        self._frozen_fingerprint = _frozen_fingerprint
        self._direct = _direct
        self._schema_evaluator = _schema_evaluator
        self._schema: "Schema | None" = None
        #: the file store behind a loaded database (None when in-memory)
        self._store: "Store | None" = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_xml(
        cls,
        *documents: str,
        options: "BuildOptions | None" = None,
        default_costs: "CostModel | None" = None,
    ) -> "Database":
        """Build a database from XML document strings."""
        builder = CollectionBuilder(options)
        for document in documents:
            builder.add_xml_fragment(document)
        return cls(builder.finish(), default_costs)

    @classmethod
    def from_documents(
        cls,
        documents: Iterable[str],
        options: "BuildOptions | None" = None,
        default_costs: "CostModel | None" = None,
    ) -> "Database":
        """Build a database from an iterable of XML document strings."""
        builder = CollectionBuilder(options)
        for document in documents:
            builder.add_xml(document)
        return cls(builder.finish(), default_costs)

    @classmethod
    def from_tree(cls, tree: DataTree, default_costs: "CostModel | None" = None) -> "Database":
        """Wrap an already-built data tree (e.g. from the generator)."""
        return cls(tree, default_costs)

    @classmethod
    def from_directory(
        cls,
        directory: str,
        pattern: str = "*.xml",
        options: "BuildOptions | None" = None,
        default_costs: "CostModel | None" = None,
    ) -> "Database":
        """Build a database from every matching file in ``directory``
        (sorted by name for deterministic preorder numbers)."""
        import pathlib

        builder = CollectionBuilder(options)
        paths = sorted(pathlib.Path(directory).glob(pattern))
        if not paths:
            raise EvaluationError(f"no files matching {pattern!r} in {directory!r}")
        for path in paths:
            builder.add_xml_fragment(path.read_text(encoding="utf-8"))
        return cls(builder.finish(), default_costs)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def save(
        self,
        path: str,
        durability: str = "none",
        wal_checkpoint_bytes: "int | None" = None,
    ) -> None:
        """Persist the tree and every index into a single-file store.

        Everything is staged in memory first and bulk-loaded into the
        B+tree in one sorted pass — the fast path for building read-mostly
        index files.

        ``durability="wal"`` routes the build through the write-ahead
        log: a build killed at any I/O boundary leaves either the
        finished store or a cleanly empty one, never a half-written
        file.  The default ``"none"`` writes straight through (fastest;
        an interrupted build must be re-run).
        """
        costs = self._default_costs
        self._tree.encode_costs(costs.insert_cost, fingerprint=costs.insert_fingerprint)
        staging = MemoryStore()
        save_tree(self._tree, staging, costs)
        StoredNodeIndexes.build(self._tree, staging)
        StoredSecondaryIndex.build(self.schema, staging)
        with open_file_store(
            path, durability=durability, wal_checkpoint_bytes=wal_checkpoint_bytes
        ) as store:
            store.bulk_load(list(staging.scan()))
            store.sync()

    @classmethod
    def open(
        cls,
        path: str,
        page_cache_pages: "int | None" = None,
        posting_cache_bytes: "int | None" = None,
        durability: str = "none",
        wal_checkpoint_bytes: "int | None" = None,
    ) -> "Database":
        """Open a saved database; posting fetches go to the file store.

        A missing, empty, or non-database file raises a typed
        :class:`~repro.errors.StorageError` naming the path and reason.
        If the store crashed while in WAL durability mode, its log is
        recovered before anything is read — committed batches are
        replayed, uncommitted ones rolled back — in *every* durability
        mode.

        Two read-path caches sit between the evaluators and the file,
        both on by default:

        ``page_cache_pages``
            Capacity of the pager's LRU page cache (the buffer-pool role
            Berkeley DB plays in the paper's §8 setup).  ``0`` disables
            it; ``None`` keeps the default
            (:data:`~repro.storage.pager.DEFAULT_CACHE_PAGES`).
        ``posting_cache_bytes``
            Byte budget of the shared decoded-posting cache reused
            across queries (and across the best-*n* driver's rounds).
            ``0`` disables it; ``None`` keeps the default
            (:data:`~repro.storage.cache.DEFAULT_POSTING_CACHE_BYTES`).

        ``durability`` selects the crash story for *writes made through
        this handle* (``"wal"`` logs them; the default ``"none"``
        matches the historical engine byte for byte), and
        ``wal_checkpoint_bytes`` sizes the log-fold trigger.

        With both cache knobs at ``0`` the read path is byte-identical
        to the uncached engine.
        """
        from ..storage.cache import DEFAULT_POSTING_CACHE_BYTES, PostingCache

        store = open_file_store(
            path,
            cache_pages=page_cache_pages,
            durability=durability,
            wal_checkpoint_bytes=wal_checkpoint_bytes,
            must_exist=True,
        )
        if posting_cache_bytes is None:
            posting_cache_bytes = DEFAULT_POSTING_CACHE_BYTES
        posting_cache = PostingCache(posting_cache_bytes) if posting_cache_bytes else None
        tree, insert_costs, fingerprint = load_tree(store)
        node_indexes = StoredNodeIndexes(store, posting_cache)
        secondary = StoredSecondaryIndex(store, posting_cache)
        schema = build_schema(tree)
        schema.encode_costs(insert_costs.insert_cost, fingerprint=insert_costs.insert_fingerprint)
        database = cls(
            tree,
            default_costs=insert_costs,
            _stored=True,
            _direct=DirectEvaluator(tree, node_indexes),
            _schema_evaluator=SchemaEvaluator(tree, schema, secondary_index=secondary),
            _frozen_fingerprint=fingerprint,
        )
        database._schema = schema
        database._store = store
        return database

    @classmethod
    def load(
        cls,
        path: str,
        page_cache_pages: "int | None" = None,
        posting_cache_bytes: "int | None" = None,
        durability: str = "none",
        wal_checkpoint_bytes: "int | None" = None,
    ) -> "Database":
        """Alias of :meth:`open` (the historical name)."""
        return cls.open(
            path,
            page_cache_pages=page_cache_pages,
            posting_cache_bytes=posting_cache_bytes,
            durability=durability,
            wal_checkpoint_bytes=wal_checkpoint_bytes,
        )

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    @property
    def tree(self) -> DataTree:
        return self._tree

    @property
    def schema(self) -> Schema:
        """The compacted DataGuide of the collection (built lazily)."""
        if self._schema is None:
            evaluator = self._schema_evaluator
            if evaluator is not None and evaluator.schema is not None:
                self._schema = evaluator.schema
            else:
                self._schema = build_schema(self._tree)
        return self._schema

    @property
    def node_count(self) -> int:
        return len(self._tree)

    def describe(self) -> str:
        """One-paragraph summary of the collection."""
        schema = self.schema
        summary = (
            f"Database: {len(self._tree)} data nodes, {len(schema)} schema nodes, "
            f"{len(self._tree.document_roots())} documents"
        )
        store = self._store
        if store is not None and getattr(store, "durability", "none") == "wal":
            summary += ", wal durability"
        return summary

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------

    def query(
        self,
        text: "str | NameSelector",
        n: "int | None" = 10,
        costs: "CostModel | None" = None,
        method: str = "auto",
        max_cost: "float | None" = None,
        stats: "EvaluationStats | None" = None,
        collect: str = "off",
        jobs: "int | None" = None,
    ) -> ResultSet:
        """Evaluate an approXQL query and return the best ``n`` results.

        ``n=None`` retrieves every approximate result; ``max_cost`` drops
        results costlier than the bound.  ``method`` picks the algorithm:
        ``"direct"`` (Section 6), ``"schema"`` (Section 7), or ``"auto"``
        (schema for best-n, direct for all).

        ``collect`` controls telemetry: ``"off"`` (default) attaches a
        report with only the method and wall time, ``"counters"`` fills
        the per-stage counters (pages read, postings decoded, second-level
        queries, ...), ``"timings"`` additionally records per-stage wall
        times.  The returned :class:`~repro.core.results.ResultSet`
        compares equal to a plain list of results and carries the report
        as ``.report``.

        ``jobs > 1`` runs the schema-driven driver's second-level queries
        on that many threads (results identical to serial; see
        :mod:`repro.concurrent`).  The direct algorithm ignores ``jobs``
        — its one primary evaluation has no independent work units.

        ``stats`` is a deprecation shim for the pre-telemetry
        :class:`~repro.schema.evaluator.EvaluationStats` hook; prefer
        ``collect="counters"`` and the returned report.
        """
        query, resolved_costs = self._resolve(text, costs)
        chosen, _ = self._choose_method(method, n)
        if collect not in MODES:
            raise EvaluationError(f"unknown collect mode {collect!r}; expected one of {MODES}")
        if stats is not None:
            warnings.warn(
                "Database.query(stats=...) is deprecated; pass collect='counters' "
                "and read the schema.* counters off ResultSet.report",
                DeprecationWarning,
                stacklevel=2,
            )
        telemetry = Telemetry(timed=collect == MODE_TIMINGS) if collect != MODE_OFF else None
        start = time.perf_counter()
        if telemetry is None:
            results = self._evaluate(chosen, query, resolved_costs, n, max_cost, stats, jobs)
        else:
            with _telemetry.collecting(telemetry):
                results = self._evaluate(
                    chosen, query, resolved_costs, n, max_cost, stats, jobs
                )
        wall_seconds = time.perf_counter() - start
        report = QueryReport.from_telemetry(
            telemetry,
            query=query.unparse(),
            method=chosen,
            collect=collect,
            n=n,
            wall_seconds=wall_seconds,
            results=len(results),
        )
        return ResultSet(results, report)

    def query_many(
        self,
        queries: Iterable,
        n: "int | None" = 10,
        costs: "CostModel | None" = None,
        max_cost: "float | None" = None,
        method: str = "auto",
        collect: str = "off",
        jobs: "int | None" = None,
    ) -> list[ResultSet]:
        """Evaluate a batch of independent queries; one
        :class:`~repro.core.results.ResultSet` per query, in input order.

        Each item of ``queries`` is query text (or a parsed selector),
        or a ``(text, cost_model)`` pair overriding ``costs`` for that
        query.  ``jobs > 1`` serves the batch from a
        :class:`~repro.concurrent.QueryPool` with that many threads
        (``-1``: one per CPU); every query still collects its own
        telemetry, so the reports are exactly what a serial run would
        attach.  Results are identical to calling :meth:`query` in a
        loop.

        One batch, one insert-cost table: encoding a different insert
        table rewrites shared per-node cost arrays on the tree and the
        schema, so a batch mixing insert fingerprints falls back to
        serial evaluation (correct, just not parallel — see
        ``docs/CONCURRENCY.md``).
        """
        resolved: list[tuple[NameSelector, CostModel]] = []
        for item in queries:
            if isinstance(item, tuple):
                text, item_costs = item
                resolved.append(self._resolve(text, item_costs if item_costs is not None else costs))
            else:
                resolved.append(self._resolve(item, costs))
        jobs = resolve_jobs(jobs)
        if jobs > 1 and len({repr(c.insert_fingerprint) for _, c in resolved}) > 1:
            jobs = 1
        if jobs == 1 or len(resolved) < 2:
            return [
                self.query(
                    query, n=n, costs=query_costs, method=method,
                    max_cost=max_cost, collect=collect,
                )
                for query, query_costs in resolved
            ]
        # Encode the batch's one insert-cost table and build the lazy
        # evaluators up front, on this thread: the workers' encode calls
        # then see a matching fingerprint and never write the shared
        # arrays, and no two workers race to build the same evaluator.
        shared = resolved[0][1]
        self._tree.encode_costs(shared.insert_cost, fingerprint=shared.insert_fingerprint)
        chosen, _ = self._choose_method(method, n)
        if chosen == "direct":
            self._direct_evaluator()
        else:
            schema_evaluator = self._schema_eval()
            if schema_evaluator.schema is not None:
                schema_evaluator.schema.encode_costs(
                    shared.insert_cost, fingerprint=shared.insert_fingerprint
                )

        def _serve(item: "tuple[NameSelector, CostModel]") -> ResultSet:
            query, query_costs = item
            return self.query(
                query, n=n, costs=query_costs, method=method,
                max_cost=max_cost, collect=collect,
            )

        with QueryPool(jobs) as pool:
            return pool.map_ordered(_serve, resolved)

    def stream(
        self,
        text: "str | NameSelector",
        costs: "CostModel | None" = None,
        initial_k: "int | None" = None,
        delta: "int | None" = None,
        collect: str = "off",
    ) -> ResultStream:
        """Incrementally stream results in increasing cost order — the
        Section 7.4 advantage of the schema-driven evaluation.

        Returns a :class:`~repro.core.results.ResultStream` whose
        ``.report`` is live: with ``collect`` enabled its counters grow
        as results are pulled, so stopping early shows exactly what the
        evaluation did so far.
        """
        query, resolved_costs = self._resolve(text, costs)
        if collect not in MODES:
            raise EvaluationError(f"unknown collect mode {collect!r}; expected one of {MODES}")
        telemetry = Telemetry(timed=collect == MODE_TIMINGS) if collect != MODE_OFF else None
        report = QueryReport(
            query=query.unparse(),
            method="schema",
            collect=collect,
            n=None,
            counters=telemetry.counters if telemetry is not None else {},
            timings=telemetry.timings if telemetry is not None else {},
        )
        iterator = self._iter_stream(query, resolved_costs, initial_k, delta)
        return ResultStream(iterator, report, telemetry)

    def _iter_stream(
        self,
        query: NameSelector,
        costs: CostModel,
        initial_k: "int | None",
        delta: "int | None",
    ) -> Iterator[QueryResult]:
        for result in self._schema_eval().iter_results(
            query, costs, initial_k=initial_k, delta=delta
        ):
            yield QueryResult(result.root, result.cost, self._tree)

    def plan(
        self,
        text: "str | NameSelector",
        n: "int | None" = 10,
        method: str = "auto",
    ) -> QueryPlan:
        """Explain which algorithm :meth:`query` would run — the
        ``"auto"`` selection decision, public instead of buried — plus a
        summary of the parsed query."""
        query, _ = self._resolve(text, None)
        chosen, reason = self._choose_method(method, n)
        or_decisions = count_or_operators(query)
        return QueryPlan(
            query=query.unparse(),
            method=chosen,
            requested=method,
            reason=reason,
            n=n,
            root_label=query.label,
            selectors=count_selectors(query),
            or_decisions=or_decisions,
            conjunctive_queries=2**or_decisions,
        )

    def count_results(self, text: "str | NameSelector", costs: "CostModel | None" = None) -> int:
        """Total number of approximate results for the query.

        Uses the direct evaluator's counting fast path: the embedding
        costs are computed once, but no result objects are materialized
        and no sort is performed.
        """
        query, resolved_costs = self._resolve(text, costs)
        return self._direct_evaluator().count(query, resolved_costs)

    def suggest_costs(self, options=None) -> CostModel:
        """Derive a cost model from the collection itself (the paper's
        declared future work): spelling-variant and sibling renamings,
        depth-aware delete costs, frequency-based insert costs.  See
        :func:`repro.approxql.suggest_cost_model`."""
        from ..approxql.suggest import suggest_cost_model
        from ..xmltree.indexes import MemoryNodeIndexes

        return suggest_cost_model(MemoryNodeIndexes(self._tree), self.schema, options)

    def explain(
        self,
        text: "str | NameSelector",
        n: "int | None" = 5,
        costs: "CostModel | None" = None,
    ) -> list[Explanation]:
        """Best-``n`` results with the transformation sequence that
        produced each (renamings, deletions, and the implicitly inserted
        element labels read off the schema)."""
        query, resolved_costs = self._resolve(text, costs)
        explanations: list[Explanation] = []
        for result in self._schema_eval().iter_results(query, resolved_costs):
            assert result.skeleton is not None
            derived_cost, operations = explain_skeleton(
                query, result.skeleton, resolved_costs, self.schema
            )
            explanations.append(
                Explanation(
                    root=result.root,
                    cost=result.cost,
                    skeleton=result.skeleton.format_skeleton(),
                    operations=operations,
                    consistent=derived_cost == result.cost,
                )
            )
            if n is not None and len(explanations) >= n:
                break
        return explanations

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _resolve(
        self, text: "str | NameSelector", costs: "CostModel | None"
    ) -> tuple[NameSelector, CostModel]:
        """Parse the query text and resolve the effective cost model
        (validating it against a stored database's baked-in costs)."""
        query = parse_query(text) if isinstance(text, str) else text
        resolved_costs = costs if costs is not None else self._default_costs
        self._check_insert_costs(resolved_costs)
        return query, resolved_costs

    def _choose_method(self, method: str, n: "int | None") -> tuple[str, str]:
        """Resolve ``method`` to a concrete algorithm plus the reason —
        the paper's conclusion, applied: schema-driven evaluation for
        best-n retrieval, direct evaluation for full retrieval."""
        if method not in _METHODS:
            raise EvaluationError(f"unknown method {method!r}; expected one of {_METHODS}")
        if method != "auto":
            return method, f"explicitly requested method={method!r}"
        if n is None:
            return (
                "direct",
                "auto: full retrieval (n=None) favors the direct algorithm (Section 6)",
            )
        return (
            "schema",
            f"auto: best-n retrieval (n={n}) favors the schema-driven algorithm (Section 7)",
        )

    def _evaluate(
        self,
        chosen: str,
        query: NameSelector,
        costs: CostModel,
        n: "int | None",
        max_cost: "float | None",
        stats: "EvaluationStats | None",
        jobs: "int | None" = None,
    ) -> list[QueryResult]:
        if chosen == "direct":
            raw = self._direct_evaluator().evaluate(query, costs, n=n, max_cost=max_cost)
        else:
            raw = self._schema_eval().evaluate(
                query, costs, n=n, max_cost=max_cost, stats=stats, jobs=jobs
            )
        with _telemetry.timer("core.materialize"):
            results = [QueryResult(result.root, result.cost, self._tree) for result in raw]
        _telemetry.count("core.results_materialized", len(results))
        return results

    def _direct_evaluator(self) -> DirectEvaluator:
        if self._direct is None:
            self._direct = DirectEvaluator(self._tree, MemoryNodeIndexes(self._tree))
        return self._direct

    def _schema_eval(self) -> SchemaEvaluator:
        if self._schema_evaluator is None:
            self._schema_evaluator = SchemaEvaluator(self._tree, self.schema)
        return self._schema_evaluator

    def _check_insert_costs(self, costs: CostModel) -> None:
        if self._stored and repr(costs.insert_fingerprint) != self._frozen_fingerprint:
            raise EvaluationError(
                "this database was loaded from disk with baked-in insert costs; "
                "queries must use the same insert-cost table (build an in-memory "
                "Database for per-query insert costs)"
            )
