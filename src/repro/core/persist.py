"""Persistence of a built database (tree + indexes) in the storage engine.

``save`` writes the normalized data tree and all posting structures into
one file store: the tree's columns, ``I_struct``/``I_text`` node
postings, and the path-dependent ``I_sec`` postings.  ``load`` restores
the tree into memory (results need it for rendering), deterministically
re-derives the schema object — ``build_schema`` is a pure function of the
tree, so the schema preorder numbers match the stored ``I_sec`` keys —
and wires the evaluators to the *stored* posting indexes, so query
evaluation fetches postings from disk exactly like the paper's
Berkeley-DB-backed implementation.

Stored postings bake in the insert-cost table in force at save time;
loading records its fingerprint and queries with a different insert-cost
table are rejected (use an in-memory database for per-query insert
costs).
"""

from __future__ import annotations

import struct

from ..approxql.costs import CostModel
from ..errors import KeyNotFoundError, StorageError
from ..storage.kv import FileStore, Namespace, Store
from ..storage.varint import decode_delta_list, encode_delta_list
from ..xmltree.indexes import StoredNodeIndexes
from ..xmltree.model import DataTree, NodeType
from ..xmltree.validate import validate_tree

META_NAMESPACE = b"meta"
TREE_NAMESPACE = b"tree"
FORMAT_VERSION = 1
_LABEL_SEPARATOR = "\x00"


def save_tree(tree: DataTree, store: Store, insert_costs: CostModel) -> None:
    """Write the tree's columns and metadata into ``store``."""
    meta = Namespace(store, META_NAMESPACE)
    columns = Namespace(store, TREE_NAMESPACE)
    for label in tree.labels:
        if _LABEL_SEPARATOR in label:
            raise StorageError(f"label {label!r} contains the column separator")
    meta.put(b"version", struct.pack("<I", FORMAT_VERSION))
    meta.put(b"nodes", struct.pack("<Q", len(tree)))
    meta.put(b"insertfp", repr(insert_costs.insert_fingerprint).encode("utf-8"))
    insert_lines = [
        line
        for line in insert_costs.to_lines()
        if line.startswith("insert ") or line.startswith("default-insert ")
    ]
    meta.put(b"insertcosts", "\n".join(insert_lines).encode("utf-8"))
    columns.put(b"labels", _LABEL_SEPARATOR.join(tree.labels).encode("utf-8"))
    columns.put(b"types", bytes(int(node_type) for node_type in tree.types))
    # parents are >= -1; shift by one so the delta codec sees non-negatives
    columns.put(b"parents", encode_delta_list([parent + 1 for parent in tree.parents]))
    columns.put(b"bounds", encode_delta_list(tree.bounds))


def load_tree(store: Store) -> tuple[DataTree, CostModel, str]:
    """Restore the tree, its build-time insert-cost table, and the
    fingerprint string recorded at save time."""
    meta = Namespace(store, META_NAMESPACE)
    columns = Namespace(store, TREE_NAMESPACE)
    try:
        (version,) = struct.unpack("<I", meta.get(b"version"))
        (node_count,) = struct.unpack("<Q", meta.get(b"nodes"))
    except KeyNotFoundError as error:
        raise StorageError(
            "not an approXQL database (missing version metadata)"
        ) from error
    except struct.error as error:
        raise StorageError(f"corrupt database metadata ({error})") from error
    if version != FORMAT_VERSION:
        raise StorageError(f"unsupported database format version {version}")
    labels = columns.get(b"labels").decode("utf-8").split(_LABEL_SEPARATOR)
    types = [NodeType(value) for value in columns.get(b"types")]
    parents_shifted, _ = decode_delta_list(columns.get(b"parents"))
    bounds, _ = decode_delta_list(columns.get(b"bounds"))
    if not (len(labels) == len(types) == len(parents_shifted) == len(bounds) == node_count):
        raise StorageError("inconsistent column lengths in stored database")

    tree = DataTree()
    tree.labels = labels
    tree.types = types
    tree.parents = [parent - 1 for parent in parents_shifted]
    tree.bounds = bounds
    tree.inscosts = [0.0] * node_count
    tree.pathcosts = [0.0] * node_count
    tree._first_child = [-1] * node_count
    tree._next_sibling = [-1] * node_count
    last_child: dict[int, int] = {}
    for pre in range(node_count):
        parent = tree.parents[pre]
        if parent == -1:
            continue
        previous = last_child.get(parent, -1)
        if previous == -1:
            tree._first_child[parent] = pre
        else:
            tree._next_sibling[previous] = pre
        last_child[parent] = pre

    insert_costs = CostModel.from_lines(
        meta.get(b"insertcosts").decode("utf-8").splitlines()
    )
    tree.encode_costs(insert_costs.insert_cost, fingerprint=insert_costs.insert_fingerprint)
    validate_tree(tree)
    fingerprint = meta.get(b"insertfp").decode("utf-8")
    return tree, insert_costs, fingerprint


def open_file_store(
    path: str,
    cache_pages: "int | None" = None,
    durability: str = "none",
    wal_checkpoint_bytes: "int | None" = None,
    must_exist: bool = False,
) -> FileStore:
    """Open (or create) the single-file store of a database.

    ``cache_pages`` sizes the pager's LRU page cache (``0`` disables it;
    ``None`` keeps the pager default).  ``durability`` selects the crash
    story (``"none"`` or ``"wal"``), ``wal_checkpoint_bytes`` the log
    size that triggers a checkpoint, and ``must_exist=True`` turns a
    missing or empty file into a typed error instead of creating it."""
    kwargs: dict = {
        "durability": durability,
        "wal_checkpoint_bytes": wal_checkpoint_bytes,
        "must_exist": must_exist,
    }
    if cache_pages is not None:
        kwargs["cache_pages"] = cache_pages
    return FileStore(path, **kwargs)


__all__ = [
    "FORMAT_VERSION",
    "load_tree",
    "open_file_store",
    "save_tree",
    "StoredNodeIndexes",
]
