"""Persistence of a built database (tree + indexes) in the storage engine.

``save`` writes the normalized data tree and all posting structures into
one file store: the tree's columns, ``I_struct``/``I_text`` node
postings, and the path-dependent ``I_sec`` postings.  ``load`` restores
the tree into memory (results need it for rendering), deterministically
re-derives the schema object — ``build_schema`` is a pure function of the
tree, so the schema preorder numbers match the stored ``I_sec`` keys —
and wires the evaluators to the *stored* posting indexes, so query
evaluation fetches postings from disk exactly like the paper's
Berkeley-DB-backed implementation.

Document mutation extends the layout without a format bump: an inserted
document's columns land as one *tree segment* under a ``seg<start>`` key
(:func:`append_tree_segment`), a deleted document's root joins the
``deadroots`` metadata list (:func:`save_dead_roots`), and the ``nodes``
count tracks the full (live + tombstoned) array length.  :func:`load_tree`
replays base columns, then segments in start order — data preorder equals
historical append order, which is what keeps the rebuilt schema numbering
identical to the one the incremental updates maintained.

Stored postings bake in the insert-cost table in force at save time;
loading records its fingerprint and queries with a different insert-cost
table are rejected (use an in-memory database for per-query insert
costs).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace

from ..approxql.costs import CostModel
from ..errors import KeyNotFoundError, StorageError
from ..storage.kv import FileStore, Namespace, Store
from ..storage.varint import decode_delta_list, encode_delta_list
from ..xmltree.indexes import StoredNodeIndexes
from ..xmltree.model import DataTree, NodeType
from ..xmltree.validate import validate_tree

META_NAMESPACE = b"meta"
TREE_NAMESPACE = b"tree"
FORMAT_VERSION = 1
_LABEL_SEPARATOR = "\x00"
_SEGMENT_PREFIX = b"seg"
_LENGTH_FMT = "<I"


@dataclass(frozen=True)
class StoreOptions:
    """The single keyword surface for a database file's storage knobs.

    Shared by :meth:`repro.core.database.Database.open`,
    :meth:`~repro.core.database.Database.save`, and the CLI's
    ``--page-cache``/``--posting-cache``/``--durability``/
    ``--wal-checkpoint-kib`` options, so every entry point spells the
    same configuration the same way.  ``None`` keeps an engine default.

    ``opener`` is the fault-injection seam (an ``open(path, mode)``
    replacement threaded through to every file the pager touches); it
    exists for the crash matrix and stays ``None`` in normal operation.
    """

    #: LRU page-cache capacity in pages (0 disables; None = engine default)
    page_cache_pages: "int | None" = None
    #: decoded-posting cache budget in bytes (None = engine default)
    posting_cache_bytes: "int | None" = None
    #: ``"none"`` or ``"wal"``
    durability: str = "none"
    #: WAL size triggering a checkpoint (None = engine default)
    wal_checkpoint_bytes: "int | None" = None
    #: page size for newly created files (an existing file dictates its own)
    page_size: "int | None" = None
    #: compiled-query cache capacity in entries (0 disables; None = default)
    compiled_cache_entries: "int | None" = None
    #: best-n result cache capacity in entries (0 disables; None = default)
    result_cache_entries: "int | None" = None
    #: file-opener replacement for fault injection (testing only)
    opener: "object | None" = None

    def merged(self, **overrides) -> "StoreOptions":
        """A copy with every non-``None`` override applied."""
        changes = {name: value for name, value in overrides.items() if value is not None}
        return replace(self, **changes) if changes else self


def save_tree(tree: DataTree, store: Store, insert_costs: CostModel) -> None:
    """Write the tree's columns and metadata into ``store``."""
    meta = Namespace(store, META_NAMESPACE)
    columns = Namespace(store, TREE_NAMESPACE)
    for label in tree.labels:
        if _LABEL_SEPARATOR in label:
            raise StorageError(f"label {label!r} contains the column separator")
    meta.put(b"version", struct.pack("<I", FORMAT_VERSION))
    meta.put(b"nodes", struct.pack("<Q", len(tree)))
    meta.put(b"insertfp", repr(insert_costs.insert_fingerprint).encode("utf-8"))
    insert_lines = [
        line
        for line in insert_costs.to_lines()
        if line.startswith("insert ") or line.startswith("default-insert ")
    ]
    meta.put(b"insertcosts", "\n".join(insert_lines).encode("utf-8"))
    columns.put(b"labels", _LABEL_SEPARATOR.join(tree.labels).encode("utf-8"))
    columns.put(b"types", bytes(int(node_type) for node_type in tree.types))
    # parents are >= -1; shift by one so the delta codec sees non-negatives
    columns.put(b"parents", encode_delta_list([parent + 1 for parent in tree.parents]))
    columns.put(b"bounds", encode_delta_list(tree.bounds))


def _segment_key(start: int) -> bytes:
    # zero-padded so lexicographic key order equals start order
    return _SEGMENT_PREFIX + b"%016d" % start


def append_tree_segment(tree: DataTree, store: Store, start: int) -> None:
    """Persist the columns of the document grafted at ``start`` as one
    tree segment, and refresh the total node count.

    The segment value holds the four column slices, each length-prefixed;
    parent and bound values are absolute (they already point into the
    full tree), so loading is pure concatenation.
    """
    columns = Namespace(store, TREE_NAMESPACE)
    meta = Namespace(store, META_NAMESPACE)
    labels = tree.labels[start:]
    for label in labels:
        if _LABEL_SEPARATOR in label:
            raise StorageError(f"label {label!r} contains the column separator")
    blobs = (
        _LABEL_SEPARATOR.join(labels).encode("utf-8"),
        bytes(int(node_type) for node_type in tree.types[start:]),
        encode_delta_list([parent + 1 for parent in tree.parents[start:]]),
        encode_delta_list(tree.bounds[start:]),
    )
    value = b"".join(struct.pack(_LENGTH_FMT, len(blob)) + blob for blob in blobs)
    columns.put(_segment_key(start), value)
    meta.put(b"nodes", struct.pack("<Q", len(tree)))


def _decode_segment(value: bytes) -> tuple[list[str], list[NodeType], list[int], list[int]]:
    blobs = []
    offset = 0
    length_size = struct.calcsize(_LENGTH_FMT)
    for _ in range(4):
        if offset + length_size > len(value):
            raise StorageError("corrupt tree segment (truncated length prefix)")
        (length,) = struct.unpack_from(_LENGTH_FMT, value, offset)
        offset += length_size
        if offset + length > len(value):
            raise StorageError("corrupt tree segment (truncated column)")
        blobs.append(value[offset : offset + length])
        offset += length
    labels = blobs[0].decode("utf-8").split(_LABEL_SEPARATOR)
    types = [NodeType(byte) for byte in blobs[1]]
    parents_shifted, _ = decode_delta_list(blobs[2])
    bounds, _ = decode_delta_list(blobs[3])
    parents = [parent - 1 for parent in parents_shifted]
    if not (len(labels) == len(types) == len(parents) == len(bounds)):
        raise StorageError("inconsistent column lengths in tree segment")
    return labels, types, parents, bounds


def save_dead_roots(tree: DataTree, store: Store) -> None:
    """Persist the tombstoned document roots (sorted delta list)."""
    meta = Namespace(store, META_NAMESPACE)
    meta.put(b"deadroots", encode_delta_list(sorted(tree.dead_roots)))


def load_tree(store: Store) -> tuple[DataTree, CostModel, str]:
    """Restore the tree (base columns plus any mutation segments, in
    historical append order), its build-time insert-cost table, and the
    fingerprint string recorded at save time."""
    meta = Namespace(store, META_NAMESPACE)
    columns = Namespace(store, TREE_NAMESPACE)
    try:
        (version,) = struct.unpack("<I", meta.get(b"version"))
        (node_count,) = struct.unpack("<Q", meta.get(b"nodes"))
    except KeyNotFoundError as error:
        raise StorageError(
            "not an approXQL database (missing version metadata)"
        ) from error
    except struct.error as error:
        raise StorageError(f"corrupt database metadata ({error})") from error
    if version != FORMAT_VERSION:
        raise StorageError(f"unsupported database format version {version}")
    labels = columns.get(b"labels").decode("utf-8").split(_LABEL_SEPARATOR)
    types = [NodeType(value) for value in columns.get(b"types")]
    parents_shifted, _ = decode_delta_list(columns.get(b"parents"))
    bounds, _ = decode_delta_list(columns.get(b"bounds"))
    parents = [parent - 1 for parent in parents_shifted]
    if not (len(labels) == len(types) == len(parents) == len(bounds)):
        raise StorageError("inconsistent column lengths in stored database")

    # mutation segments: key order is start order is append order
    for key, value in columns.scan():
        if not key.startswith(_SEGMENT_PREFIX):
            continue
        try:
            start = int(key[len(_SEGMENT_PREFIX):])
        except ValueError as error:
            raise StorageError(f"corrupt tree segment key {key!r}") from error
        if start != len(labels):
            raise StorageError(
                f"tree segment at {start} does not continue the column "
                f"(length {len(labels)})"
            )
        seg_labels, seg_types, seg_parents, seg_bounds = _decode_segment(value)
        labels.extend(seg_labels)
        types.extend(seg_types)
        parents.extend(seg_parents)
        bounds.extend(seg_bounds)
    if len(labels) != node_count:
        raise StorageError(
            f"stored tree has {len(labels)} nodes, metadata says {node_count}"
        )

    tree = DataTree()
    tree.labels = labels
    tree.types = types
    tree.parents = parents
    tree.bounds = bounds
    tree.bounds[0] = node_count - 1  # grafts only persist their own columns
    tree.inscosts = [0.0] * node_count
    tree.pathcosts = [0.0] * node_count
    tree.rebuild_links()

    try:
        dead_roots, _ = decode_delta_list(meta.get(b"deadroots"))
    except KeyNotFoundError:
        dead_roots = []
    tree.dead_roots = set(dead_roots)

    insert_costs = CostModel.from_lines(
        meta.get(b"insertcosts").decode("utf-8").splitlines()
    )
    tree.encode_costs(insert_costs.insert_cost, fingerprint=insert_costs.insert_fingerprint)
    validate_tree(tree)
    fingerprint = meta.get(b"insertfp").decode("utf-8")
    return tree, insert_costs, fingerprint


def open_file_store(
    path: str,
    options: "StoreOptions | None" = None,
    must_exist: bool = False,
) -> FileStore:
    """Open (or create) the single-file store of a database.

    ``options`` carries the storage knobs (see :class:`StoreOptions`;
    ``None`` means all defaults); ``must_exist=True`` turns a missing or
    empty file into a typed error instead of creating it."""
    options = options or StoreOptions()
    kwargs: dict = {
        "durability": options.durability,
        "wal_checkpoint_bytes": options.wal_checkpoint_bytes,
        "must_exist": must_exist,
    }
    if options.page_cache_pages is not None:
        kwargs["cache_pages"] = options.page_cache_pages
    if options.page_size is not None:
        kwargs["page_size"] = options.page_size
    if options.opener is not None:
        kwargs["opener"] = options.opener
    return FileStore(path, **kwargs)


__all__ = [
    "FORMAT_VERSION",
    "StoreOptions",
    "append_tree_segment",
    "load_tree",
    "open_file_store",
    "save_dead_roots",
    "save_tree",
    "StoredNodeIndexes",
]
