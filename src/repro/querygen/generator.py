"""The approXQL query generator of Section 8.1.

"The generator expects a query pattern that determines the structure of
the query ... produces approXQL queries by filling in the templates with
names and terms randomly selected from the indexes of the data tree.  For
each produced query, the generator also creates a file that contains the
insert costs, the delete costs, and the renamings of the query selectors.
The labels used for renamings are selected randomly from the indexes."

``QueryGenerator`` reproduces that behaviour: name slots are filled from
``I_struct``'s vocabulary, term slots from ``I_text``'s; every generated
query comes with a :class:`~repro.approxql.costs.CostModel` holding the
per-label delete costs and the requested number of renamings per label.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..approxql.ast import AndExpr, NameSelector, OrExpr, QueryExpr, TextSelector
from ..approxql.costs import CostModel
from ..errors import GenerationError
from ..xmltree.indexes import NodeIndexes
from ..xmltree.model import NodeType
from .patterns import PatternNode, parse_pattern


@dataclass(frozen=True)
class GeneratedQuery:
    """One generated query with its cost file."""

    query: NameSelector
    costs: CostModel

    def unparse(self) -> str:
        """The generated query as approXQL text."""
        return self.query.unparse()


@dataclass(frozen=True)
class QueryGenOptions:
    """Knobs of the generator (paper settings as defaults).

    ``renamings_per_label``
        The r of the experiments (0, 5, or 10 in the paper).
    ``delete_cost_range`` / ``rename_cost_range``
        Uniform integer ranges for the generated costs.
    """

    renamings_per_label: int = 0
    delete_cost_range: tuple[int, int] = (1, 10)
    rename_cost_range: tuple[int, int] = (1, 10)
    insert_cost: int = 1

    def validate(self) -> None:
        """Raise :class:`~repro.errors.GenerationError` on bad options."""
        if self.renamings_per_label < 0:
            raise GenerationError("renamings_per_label must be non-negative")
        for low, high in (self.delete_cost_range, self.rename_cost_range):
            if low < 0 or high < low:
                raise GenerationError("cost ranges must be 0 <= low <= high")


class QueryGenerator:
    """Generates queries for one data tree's indexes."""

    def __init__(
        self,
        indexes: NodeIndexes,
        options: "QueryGenOptions | None" = None,
        seed: int = 1,
    ) -> None:
        self._options = options or QueryGenOptions()
        self._options.validate()
        self._rng = random.Random(seed)
        self._struct_labels = sorted(indexes.labels(NodeType.STRUCT))
        self._text_labels = sorted(indexes.labels(NodeType.TEXT))
        if not self._struct_labels:
            raise GenerationError("the collection has no element names to sample")
        if not self._text_labels:
            raise GenerationError("the collection has no terms to sample")

    def generate(self, pattern: "str | PatternNode") -> GeneratedQuery:
        """Fill one query from ``pattern`` and build its cost file."""
        if isinstance(pattern, str):
            pattern = parse_pattern(pattern)
        query = self._fill(pattern)
        assert isinstance(query, NameSelector)
        costs = self._cost_model_for(query)
        return GeneratedQuery(query, costs)

    def generate_set(self, pattern: "str | PatternNode", count: int) -> list[GeneratedQuery]:
        """A query set as in the paper ("each set contains 10 queries")."""
        if isinstance(pattern, str):
            pattern = parse_pattern(pattern)
        return [self.generate(pattern) for _ in range(count)]

    # ------------------------------------------------------------------
    # filling
    # ------------------------------------------------------------------

    def _fill(self, node: PatternNode) -> QueryExpr:
        if node.kind == "name":
            label = self._rng.choice(self._struct_labels)
            if node.content is None:
                return NameSelector(label)
            return NameSelector(label, self._fill(node.content))
        if node.kind == "term":
            return TextSelector(self._rng.choice(self._text_labels))
        items = tuple(self._fill(item) for item in node.items)
        if node.kind == "and":
            return AndExpr(items)
        if node.kind == "or":
            return OrExpr(items)
        raise GenerationError(f"unknown pattern node kind {node.kind!r}")

    # ------------------------------------------------------------------
    # cost files
    # ------------------------------------------------------------------

    def _cost_model_for(self, query: QueryExpr) -> CostModel:
        options = self._options
        model = CostModel(default_insert_cost=options.insert_cost)
        for label, node_type in _selector_labels(query):
            low, high = options.delete_cost_range
            model.set_delete_cost(label, node_type, self._rng.randint(low, high))
            vocabulary = (
                self._struct_labels if node_type == NodeType.STRUCT else self._text_labels
            )
            added = 0
            attempts = 0
            while added < options.renamings_per_label and attempts < 20 * (
                options.renamings_per_label + 1
            ):
                attempts += 1
                target = self._rng.choice(vocabulary)
                if target == label:
                    continue
                rename_low, rename_high = options.rename_cost_range
                model.add_renaming(
                    label, target, node_type, self._rng.randint(rename_low, rename_high)
                )
                added += 1
        return model


def _selector_labels(expr: QueryExpr) -> list[tuple[str, NodeType]]:
    """(label, type) of every selector in the query, duplicates removed."""
    found: list[tuple[str, NodeType]] = []
    seen: set[tuple[str, NodeType]] = set()

    def walk(node: QueryExpr) -> None:
        if isinstance(node, TextSelector):
            key = (node.word, NodeType.TEXT)
            if key not in seen:
                seen.add(key)
                found.append(key)
        elif isinstance(node, NameSelector):
            key = (node.label, NodeType.STRUCT)
            if key not in seen:
                seen.add(key)
                found.append(key)
            if node.content is not None:
                walk(node.content)
        else:
            for item in node.items:  # type: ignore[union-attr]
                walk(item)

    walk(expr)
    return found
