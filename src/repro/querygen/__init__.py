"""Pattern-driven approXQL query and cost-file generation (Section 8.1)."""

from .generator import GeneratedQuery, QueryGenOptions, QueryGenerator
from .patterns import PAPER_PATTERNS, PatternNode, parse_pattern

__all__ = [
    "GeneratedQuery",
    "PAPER_PATTERNS",
    "PatternNode",
    "QueryGenOptions",
    "QueryGenerator",
    "parse_pattern",
]
