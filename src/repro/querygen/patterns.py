"""Query patterns (Section 8.1).

A pattern determines the *structure* of generated queries: the literal
tokens ``name`` and ``term`` are template slots, combined with the
containment and Boolean operators of approXQL::

    name[name[term and (term or term)]]

The three patterns used in the paper's experiments are provided as
:data:`PAPER_PATTERNS`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import QuerySyntaxError

#: the patterns of Section 8.1, keyed as in the paper
PAPER_PATTERNS = {
    1: "name[name[name[term]]]",
    2: "name[name[term and (term or term)]]",
    3: (
        "name[name[name[term and term and (term or term)] or "
        "name[name[term and term]]] and name]"
    ),
}


@dataclass(frozen=True)
class PatternNode:
    """One node of a parsed pattern.

    ``kind`` is ``"name"``, ``"term"``, ``"and"``, or ``"or"``; selector
    nodes carry their slot ``index`` (position among slots of the same
    kind, for reproducible filling) and an optional ``content``.
    """

    kind: str
    index: int = -1
    content: "PatternNode | None" = None
    items: tuple["PatternNode", ...] = ()

    def count(self, kind: str) -> int:
        """Number of pattern nodes of the given kind in this subtree."""
        total = 1 if self.kind == kind else 0
        if self.content is not None:
            total += self.content.count(kind)
        for item in self.items:
            total += item.count(kind)
        return total


def parse_pattern(text: str) -> PatternNode:
    """Parse pattern text into a :class:`PatternNode` tree."""
    parser = _PatternParser(text)
    root = parser.parse_selector()
    parser.skip_ws()
    if parser.pos != len(parser.text):
        raise QuerySyntaxError("trailing input after pattern", parser.pos)
    if root.kind != "name":
        raise QuerySyntaxError("a pattern must be rooted at a name slot")
    return root


class _PatternParser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self._name_count = 0
        self._term_count = 0

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def _word(self) -> str:
        self.skip_ws()
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos].isalpha():
            self.pos += 1
        return self.text[start : self.pos]

    def _expect(self, char: str) -> None:
        self.skip_ws()
        if self.pos >= len(self.text) or self.text[self.pos] != char:
            raise QuerySyntaxError(f"expected {char!r} in pattern", self.pos)
        self.pos += 1

    def _peek(self) -> str:
        self.skip_ws()
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def parse_selector(self) -> PatternNode:
        word = self._word()
        if word == "term":
            index = self._term_count
            self._term_count += 1
            return PatternNode("term", index)
        if word == "name":
            index = self._name_count
            self._name_count += 1
            if self._peek() == "[":
                self._expect("[")
                content = self.parse_expr()
                self._expect("]")
                return PatternNode("name", index, content=content)
            return PatternNode("name", index)
        raise QuerySyntaxError(f"expected 'name' or 'term' in pattern, got {word!r}", self.pos)

    def parse_expr(self) -> PatternNode:
        items = [self.parse_and()]
        while True:
            save = self.pos
            word = self._word()
            if word == "or":
                items.append(self.parse_and())
            else:
                self.pos = save
                break
        if len(items) == 1:
            return items[0]
        return PatternNode("or", items=tuple(items))

    def parse_and(self) -> PatternNode:
        items = [self.parse_primary()]
        while True:
            save = self.pos
            word = self._word()
            if word == "and":
                items.append(self.parse_primary())
            else:
                self.pos = save
                break
        if len(items) == 1:
            return items[0]
        return PatternNode("and", items=tuple(items))

    def parse_primary(self) -> PatternNode:
        if self._peek() == "(":
            self._expect("(")
            expr = self.parse_expr()
            self._expect(")")
            return expr
        return self.parse_selector()
