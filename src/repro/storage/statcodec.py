"""Binary codec and store segment for planner statistics.

The planner's :class:`~repro.planner.stats.CollectionStats` persists in
its own namespace (``stats``) as one value, so a stored database opens
without re-walking the collection.  The segment is written inside the
same WAL commit frame as the mutation that produced it — a crash at any
I/O boundary leaves either the previous generation's stats or the new
one, never a torn blob (the crash matrix's ``planner`` workload kills
inside these frames) — and :func:`load_stats` cross-checks the recorded
node counts against the loaded tree, so a segment that somehow went
stale is discarded rather than trusted.

Layout (all integers varint unless noted)::

    u32   version (STATS_VERSION)
    uvarints  node_count live_node_count document_count
              schema_classes schema_max_fanout
    uvarint-list  depth histogram, flattened (depth, count) pairs
    u32+bytes     struct labels, NUL-joined UTF-8
    uvarint-list  struct posting sizes (parallel to the labels)
    u32+bytes     text terms, NUL-joined UTF-8
    uvarint-list  text posting sizes (parallel to the terms)

The generation is deliberately *not* stored: stats always re-enter the
engine stamped with the opening state's generation (0), exactly like
the posting cache's generation tags.
"""

from __future__ import annotations

import struct

from ..errors import KeyNotFoundError, StorageError
from ..planner.stats import STATS_VERSION, CollectionStats
from .kv import Namespace, Store
from .varint import (
    decode_uvarint,
    decode_uvarint_list,
    encode_uvarint,
    encode_uvarint_list,
)

STATS_NAMESPACE = b"stats"
STATS_KEY = b"stats"
PLANNER_KEY = b"planner"
PLANNER_STATE_VERSION = 1
_SEPARATOR = "\x00"
_U32 = "<I"
_F64 = "<d"


def encode_stats(stats: CollectionStats) -> bytes:
    """Serialize one :class:`CollectionStats` (generation excluded)."""
    out = bytearray(struct.pack(_U32, STATS_VERSION))
    for value in (
        stats.node_count,
        stats.live_node_count,
        stats.document_count,
        stats.schema_classes,
        stats.schema_max_fanout,
    ):
        encode_uvarint(value, out)
    flat: list[int] = []
    for depth in sorted(stats.depth_histogram):
        flat.extend((depth, stats.depth_histogram[depth]))
    out += encode_uvarint_list(flat)
    for sizes in (stats.struct_sizes, stats.text_sizes):
        labels = sorted(sizes)
        blob = _SEPARATOR.join(labels).encode("utf-8")
        out += struct.pack(_U32, len(blob))
        out += blob
        out += encode_uvarint_list([sizes[label] for label in labels])
    return bytes(out)


def decode_stats(data: bytes) -> CollectionStats:
    """Inverse of :func:`encode_stats`; raises a typed
    :class:`~repro.errors.StorageError` on any malformed input."""
    try:
        (version,) = struct.unpack_from(_U32, data, 0)
        if version != STATS_VERSION:
            raise StorageError(f"unsupported stats segment version {version}")
        offset = struct.calcsize(_U32)
        header = []
        for _ in range(5):
            value, offset = decode_uvarint(data, offset)
            header.append(value)
        flat, offset = decode_uvarint_list(data, offset)
        if len(flat) % 2:
            raise StorageError("corrupt stats segment (odd histogram length)")
        histogram = {flat[i]: flat[i + 1] for i in range(0, len(flat), 2)}
        sizes: list[dict[str, int]] = []
        for _ in range(2):
            (length,) = struct.unpack_from(_U32, data, offset)
            offset += struct.calcsize(_U32)
            blob = data[offset : offset + length]
            if len(blob) != length:
                raise StorageError("corrupt stats segment (truncated labels)")
            offset += length
            labels = blob.decode("utf-8").split(_SEPARATOR) if blob else []
            counts, offset = decode_uvarint_list(data, offset)
            if len(counts) != len(labels):
                raise StorageError("corrupt stats segment (label/size mismatch)")
            sizes.append(dict(zip(labels, counts)))
    except (struct.error, IndexError, UnicodeDecodeError) as error:
        raise StorageError(f"corrupt stats segment ({error})") from error
    return CollectionStats(
        generation=0,
        node_count=header[0],
        live_node_count=header[1],
        document_count=header[2],
        max_depth=max(histogram, default=0),
        schema_classes=header[3],
        schema_max_fanout=header[4],
        depth_histogram=histogram,
        struct_sizes=sizes[0],
        text_sizes=sizes[1],
    )


def save_stats(store: Store, stats: CollectionStats) -> None:
    """Write the stats segment (the caller owns the commit boundary)."""
    Namespace(store, STATS_NAMESPACE).put(STATS_KEY, encode_stats(stats))


def load_stats(store: Store) -> "CollectionStats | None":
    """Read the stats segment; ``None`` when the store predates it (the
    opener falls back to a lazy :func:`~repro.planner.stats.compute_stats`)."""
    try:
        return decode_stats(Namespace(store, STATS_NAMESPACE).get(STATS_KEY))
    except KeyNotFoundError:
        return None


def encode_planner_state(correction: float, corrections: int) -> bytes:
    """Serialize the planner's session feedback (the capped correction
    factor plus how many gross mispredictions produced it)."""
    out = bytearray(struct.pack(_U32, PLANNER_STATE_VERSION))
    out += struct.pack(_F64, float(correction))
    encode_uvarint(int(corrections), out)
    return bytes(out)


def decode_planner_state(data: bytes) -> tuple[float, int]:
    """Inverse of :func:`encode_planner_state`."""
    try:
        (version,) = struct.unpack_from(_U32, data, 0)
        if version != PLANNER_STATE_VERSION:
            raise StorageError(f"unsupported planner segment version {version}")
        offset = struct.calcsize(_U32)
        (correction,) = struct.unpack_from(_F64, data, offset)
        offset += struct.calcsize(_F64)
        corrections, _ = decode_uvarint(data, offset)
    except (struct.error, IndexError) as error:
        raise StorageError(f"corrupt planner segment ({error})") from error
    if not correction >= 1.0:
        raise StorageError(f"corrupt planner segment (correction {correction!r})")
    return correction, corrections


def save_planner_state(store: Store, correction: float, corrections: int) -> None:
    """Write the planner segment (the caller owns the commit boundary).
    Lives beside the stats segment in the ``stats`` namespace so the
    session's learned corrections survive reopen."""
    Namespace(store, STATS_NAMESPACE).put(
        PLANNER_KEY, encode_planner_state(correction, corrections)
    )


def load_planner_state(store: Store) -> "tuple[float, int] | None":
    """Read the planner segment; ``None`` when the store predates it or
    the blob is corrupt (corrections are an optimization, never worth
    failing an open over)."""
    try:
        payload = Namespace(store, STATS_NAMESPACE).get(PLANNER_KEY)
    except KeyNotFoundError:
        return None
    try:
        return decode_planner_state(payload)
    except StorageError:
        return None


__all__ = [
    "PLANNER_KEY",
    "STATS_KEY",
    "STATS_NAMESPACE",
    "decode_planner_state",
    "decode_stats",
    "encode_planner_state",
    "encode_stats",
    "load_planner_state",
    "load_stats",
    "save_planner_state",
    "save_stats",
]
