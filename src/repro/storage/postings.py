"""Serializers for the posting lists stored in the index namespaces.

Two posting shapes occur in the paper:

* **node postings** for ``I_struct`` / ``I_text`` — per node the four
  numbers of the encoding of Section 6.2: ``(pre, bound, pathcost,
  inscost)``, sorted by ``pre``.
* **instance postings** for the secondary index ``I_sec`` (Section 7.3) —
  ``(pre, bound)`` pairs of the instances of one schema node, sorted by
  ``pre``.

Both are stored column-wise: the ``pre`` column delta-encoded (it is
ascending), the other columns as plain varints.

The codecs report decoded/encoded entry and byte counts into the ambient
telemetry collector (``codec.*``) — the "postings decoded" currency the
paper's §8 comparison is phrased in, measured where decoding happens.
"""

from __future__ import annotations

from ..errors import StorageError
from ..telemetry.collector import count as _telemetry_count, current as _telemetry_current
from .varint import (
    decode_uvarint,
    decode_uvarint_block,
    encode_svarint,
    encode_uvarint,
)

NodePosting = tuple[int, int, int, int]
InstancePosting = tuple[int, int]


def encode_node_postings(entries: list[NodePosting]) -> bytes:
    """Serialize ``(pre, bound, pathcost, inscost)`` tuples sorted by pre."""
    _check_sorted(entries)
    _telemetry_count("codec.entries_encoded", len(entries))
    out = bytearray()
    encode_uvarint(len(entries), out)
    previous_pre = 0
    for pre, bound, pathcost, inscost in entries:
        encode_svarint(pre - previous_pre, out)
        previous_pre = pre
        # bound >= pre for struct nodes and 0 for text nodes; store the
        # (possibly negative) offset so both compress well.
        encode_svarint(bound - pre, out)
        encode_uvarint(pathcost, out)
        encode_uvarint(inscost, out)
    return bytes(out)


def decode_node_postings(data: bytes) -> list[NodePosting]:
    """Inverse of :func:`encode_node_postings`.

    The serialized columns are decoded with the block varint kernel —
    one scan of the buffer materializes every raw value, then one tight
    loop zig-zag-decodes, prefix-sums, and batch-builds the tuples —
    instead of four codec function calls per entry.
    """
    count, pos = decode_uvarint(data, 0)
    telemetry = _telemetry_current()
    if telemetry is not None:
        telemetry.count("codec.lists_decoded")
        telemetry.count("codec.entries_decoded", count)
        telemetry.count("codec.bytes_decoded", len(data))
    raws, _ = decode_uvarint_block(data, pos, 4 * count)
    entries: list[NodePosting] = []
    append = entries.append
    pre = 0
    index = 0
    for _ in range(count):
        delta = raws[index]
        offset = raws[index + 1]
        pre += (delta >> 1) if not delta & 1 else -((delta + 1) >> 1)
        bound = pre + ((offset >> 1) if not offset & 1 else -((offset + 1) >> 1))
        append((pre, bound, raws[index + 2], raws[index + 3]))
        index += 4
    return entries


def encode_instance_postings(entries: list[InstancePosting]) -> bytes:
    """Serialize ``(pre, bound)`` pairs sorted by pre."""
    _check_sorted(entries)
    _telemetry_count("codec.entries_encoded", len(entries))
    out = bytearray()
    encode_uvarint(len(entries), out)
    previous_pre = 0
    for pre, bound in entries:
        encode_svarint(pre - previous_pre, out)
        previous_pre = pre
        encode_svarint(bound - pre, out)
    return bytes(out)


def decode_instance_postings(data: bytes) -> list[InstancePosting]:
    """Inverse of :func:`encode_instance_postings` (block decode kernel,
    see :func:`decode_node_postings`)."""
    count, pos = decode_uvarint(data, 0)
    telemetry = _telemetry_current()
    if telemetry is not None:
        telemetry.count("codec.lists_decoded")
        telemetry.count("codec.entries_decoded", count)
        telemetry.count("codec.bytes_decoded", len(data))
    raws, _ = decode_uvarint_block(data, pos, 2 * count)
    entries: list[InstancePosting] = []
    append = entries.append
    pre = 0
    index = 0
    for _ in range(count):
        delta = raws[index]
        offset = raws[index + 1]
        pre += (delta >> 1) if not delta & 1 else -((delta + 1) >> 1)
        append((pre, pre + ((offset >> 1) if not offset & 1 else -((offset + 1) >> 1))))
        index += 2
    return entries


def _check_sorted(entries: list) -> None:
    for left, right in zip(entries, entries[1:]):
        if left[0] >= right[0]:
            raise StorageError("posting entries must be strictly ascending in pre")
