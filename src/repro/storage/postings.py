"""Serializers for the posting lists stored in the index namespaces.

Two posting shapes occur in the paper:

* **node postings** for ``I_struct`` / ``I_text`` — per node the four
  numbers of the encoding of Section 6.2: ``(pre, bound, pathcost,
  inscost)``, sorted by ``pre``.
* **instance postings** for the secondary index ``I_sec`` (Section 7.3) —
  ``(pre, bound)`` pairs of the instances of one schema node, sorted by
  ``pre``.

Both are stored column-wise: the ``pre`` column delta-encoded (it is
ascending), the other columns as plain varints.

Decoded postings come in two in-memory shapes:

* plain ``list[tuple]`` — the historical shape, still produced by
  :func:`decode_node_postings` / :func:`decode_instance_postings`;
* **columnar** — :class:`PostingColumns` / :class:`InstanceColumns`,
  flat ``array('q')`` (or ``memoryview``) buffers, one per field.  The
  columnar shape duck-types a sequence of tuples, so every tuple-shaped
  consumer keeps working, while whole-column consumers (the evaluation
  kernel, the shared-memory exporter of :mod:`repro.storage.shm`) borrow
  the buffers zero-copy.  The stored indexes decode into columns; the
  ``*_columns`` decoders fill the four (or two) buffers in one pass.

The codecs report decoded/encoded entry and byte counts into the ambient
telemetry collector (``codec.*``) — the "postings decoded" currency the
paper's §8 comparison is phrased in, measured where decoding happens.
"""

from __future__ import annotations

from array import array

from ..errors import StorageError
from ..telemetry.collector import count as _telemetry_count, current as _telemetry_current
from .varint import (
    decode_uvarint,
    decode_uvarint_block,
    encode_svarint,
    encode_uvarint,
)

NodePosting = tuple[int, int, int, int]
InstancePosting = tuple[int, int]


class _Columns:
    """Shared sequence-of-tuples duck typing over parallel flat columns.

    Columns are flat signed-64-bit integer buffers — ``array('q')`` when
    decoded locally, ``memoryview('q')`` slices when attached to a
    shared-memory segment — and are **immutable by convention**, exactly
    like cached posting lists.  Subclasses name their columns in
    ``__slots__`` order; rows materialize as plain tuples so every
    tuple-shaped consumer of a decoded posting keeps working unchanged.
    """

    __slots__ = ()

    def _columns(self) -> tuple:
        return tuple(getattr(self, name) for name in self.__slots__)

    def __len__(self) -> int:
        return len(getattr(self, self.__slots__[0]))

    def __iter__(self):
        return zip(*self._columns())

    def __getitem__(self, index):
        if isinstance(index, slice):
            return list(zip(*(column[index] for column in self._columns())))
        return tuple(column[index] for column in self._columns())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (_Columns, list)):
            return list(self) == list(other)
        return NotImplemented

    def __hash__(self) -> None:  # pragma: no cover - mirrors list
        raise TypeError(f"unhashable type: {type(self).__name__!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(rows={len(self)})"

    def tolist(self) -> list:
        """The posting materialized as the historical list of tuples."""
        return list(self)


class PostingColumns(_Columns):
    """A node posting — ``(pre, bound, pathcost, inscost)`` rows — as
    four parallel flat buffers.  The evaluation kernel borrows the
    buffers directly (zero-copy) instead of re-gathering per-row fields;
    see :meth:`repro.engine.columns.EvalColumns.from_postings`."""

    __slots__ = ("pre", "bound", "pathcost", "inscost")

    def __init__(self, pre, bound, pathcost, inscost) -> None:
        self.pre = pre
        self.bound = bound
        self.pathcost = pathcost
        self.inscost = inscost

    @classmethod
    def from_rows(cls, rows: list[NodePosting]) -> "PostingColumns":
        """Columns built from tuple-shaped rows (tests, exporters)."""
        pre = array("q")
        bound = array("q")
        pathcost = array("q")
        inscost = array("q")
        for row in rows:
            pre.append(row[0])
            bound.append(row[1])
            pathcost.append(row[2])
            inscost.append(row[3])
        return cls(pre, bound, pathcost, inscost)

    def __reduce__(self):
        return (_rebuild_posting_columns, tuple(bytes(memoryview(c).cast("B")) for c in self._columns()))


class InstanceColumns(_Columns):
    """An instance posting — ``(pre, bound)`` rows — as two parallel
    flat buffers (the ``I_sec`` shape of Section 7.3)."""

    __slots__ = ("pre", "bound")

    def __init__(self, pre, bound) -> None:
        self.pre = pre
        self.bound = bound

    @classmethod
    def from_rows(cls, rows: list[InstancePosting]) -> "InstanceColumns":
        pre = array("q")
        bound = array("q")
        for row in rows:
            pre.append(row[0])
            bound.append(row[1])
        return cls(pre, bound)

    def __reduce__(self):
        return (_rebuild_instance_columns, tuple(bytes(memoryview(c).cast("B")) for c in self._columns()))


def _rebuild_posting_columns(*raw: bytes) -> PostingColumns:
    """Unpickle hook: columns rematerialize as local ``array('q')``
    buffers (a pickled shared-memory view must not try to re-attach)."""
    columns = []
    for data in raw:
        column = array("q")
        column.frombytes(data)
        columns.append(column)
    return PostingColumns(*columns)


def _rebuild_instance_columns(*raw: bytes) -> InstanceColumns:
    columns = []
    for data in raw:
        column = array("q")
        column.frombytes(data)
        columns.append(column)
    return InstanceColumns(*columns)


def encode_node_postings(entries: list[NodePosting]) -> bytes:
    """Serialize ``(pre, bound, pathcost, inscost)`` tuples sorted by pre."""
    _check_sorted(entries)
    _telemetry_count("codec.entries_encoded", len(entries))
    out = bytearray()
    encode_uvarint(len(entries), out)
    previous_pre = 0
    for pre, bound, pathcost, inscost in entries:
        encode_svarint(pre - previous_pre, out)
        previous_pre = pre
        # bound >= pre for struct nodes and 0 for text nodes; store the
        # (possibly negative) offset so both compress well.
        encode_svarint(bound - pre, out)
        encode_uvarint(pathcost, out)
        encode_uvarint(inscost, out)
    return bytes(out)


def decode_node_postings(data: bytes) -> list[NodePosting]:
    """Inverse of :func:`encode_node_postings`.

    The serialized columns are decoded with the block varint kernel —
    one scan of the buffer materializes every raw value, then one tight
    loop zig-zag-decodes, prefix-sums, and batch-builds the tuples —
    instead of four codec function calls per entry.
    """
    count, pos = decode_uvarint(data, 0)
    telemetry = _telemetry_current()
    if telemetry is not None:
        telemetry.count("codec.lists_decoded")
        telemetry.count("codec.entries_decoded", count)
        telemetry.count("codec.bytes_decoded", len(data))
    raws, _ = decode_uvarint_block(data, pos, 4 * count)
    entries: list[NodePosting] = []
    append = entries.append
    pre = 0
    index = 0
    for _ in range(count):
        delta = raws[index]
        offset = raws[index + 1]
        pre += (delta >> 1) if not delta & 1 else -((delta + 1) >> 1)
        bound = pre + ((offset >> 1) if not offset & 1 else -((offset + 1) >> 1))
        append((pre, bound, raws[index + 2], raws[index + 3]))
        index += 4
    return entries


def decode_node_posting_columns(data: bytes) -> PostingColumns:
    """Columnar inverse of :func:`encode_node_postings`.

    Same block-decode kernel as :func:`decode_node_postings`, but the
    values land in four flat ``array('q')`` buffers instead of a list of
    tuples — the shape the evaluation kernel and the shared-memory
    exporter consume without per-row re-gathering.
    """
    count, pos = decode_uvarint(data, 0)
    telemetry = _telemetry_current()
    if telemetry is not None:
        telemetry.count("codec.lists_decoded")
        telemetry.count("codec.entries_decoded", count)
        telemetry.count("codec.bytes_decoded", len(data))
    raws, _ = decode_uvarint_block(data, pos, 4 * count)
    pre_column = array("q", bytes(8 * count))
    bound_column = array("q", bytes(8 * count))
    pathcost_column = array("q", bytes(8 * count))
    inscost_column = array("q", bytes(8 * count))
    pre = 0
    index = 0
    for row in range(count):
        delta = raws[index]
        offset = raws[index + 1]
        pre += (delta >> 1) if not delta & 1 else -((delta + 1) >> 1)
        pre_column[row] = pre
        bound_column[row] = pre + ((offset >> 1) if not offset & 1 else -((offset + 1) >> 1))
        pathcost_column[row] = raws[index + 2]
        inscost_column[row] = raws[index + 3]
        index += 4
    return PostingColumns(pre_column, bound_column, pathcost_column, inscost_column)


def encode_instance_postings(entries: list[InstancePosting]) -> bytes:
    """Serialize ``(pre, bound)`` pairs sorted by pre."""
    _check_sorted(entries)
    _telemetry_count("codec.entries_encoded", len(entries))
    out = bytearray()
    encode_uvarint(len(entries), out)
    previous_pre = 0
    for pre, bound in entries:
        encode_svarint(pre - previous_pre, out)
        previous_pre = pre
        encode_svarint(bound - pre, out)
    return bytes(out)


def decode_instance_postings(data: bytes) -> list[InstancePosting]:
    """Inverse of :func:`encode_instance_postings` (block decode kernel,
    see :func:`decode_node_postings`)."""
    count, pos = decode_uvarint(data, 0)
    telemetry = _telemetry_current()
    if telemetry is not None:
        telemetry.count("codec.lists_decoded")
        telemetry.count("codec.entries_decoded", count)
        telemetry.count("codec.bytes_decoded", len(data))
    raws, _ = decode_uvarint_block(data, pos, 2 * count)
    entries: list[InstancePosting] = []
    append = entries.append
    pre = 0
    index = 0
    for _ in range(count):
        delta = raws[index]
        offset = raws[index + 1]
        pre += (delta >> 1) if not delta & 1 else -((delta + 1) >> 1)
        append((pre, pre + ((offset >> 1) if not offset & 1 else -((offset + 1) >> 1))))
        index += 2
    return entries


def decode_instance_posting_columns(data: bytes) -> InstanceColumns:
    """Columnar inverse of :func:`encode_instance_postings` (see
    :func:`decode_node_posting_columns`)."""
    count, pos = decode_uvarint(data, 0)
    telemetry = _telemetry_current()
    if telemetry is not None:
        telemetry.count("codec.lists_decoded")
        telemetry.count("codec.entries_decoded", count)
        telemetry.count("codec.bytes_decoded", len(data))
    raws, _ = decode_uvarint_block(data, pos, 2 * count)
    pre_column = array("q", bytes(8 * count))
    bound_column = array("q", bytes(8 * count))
    pre = 0
    index = 0
    for row in range(count):
        delta = raws[index]
        offset = raws[index + 1]
        pre += (delta >> 1) if not delta & 1 else -((delta + 1) >> 1)
        pre_column[row] = pre
        bound_column[row] = pre + ((offset >> 1) if not offset & 1 else -((offset + 1) >> 1))
        index += 2
    return InstanceColumns(pre_column, bound_column)


def _check_sorted(entries: list) -> None:
    for left, right in zip(entries, entries[1:]):
        if left[0] >= right[0]:
            raise StorageError("posting entries must be strictly ascending in pre")
