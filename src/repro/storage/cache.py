"""Read-path caches above the storage engine.

Two caches live here, one per level of the read path:

* :class:`PostingCache` — a byte-budgeted LRU of **decoded posting
  lists**, shared across queries and across index objects.  The stored
  indexes (``StoredNodeIndexes``, ``StoredSecondaryIndex``) consult it
  before hitting the key-value store, so the incremental best-*n*
  driver's overlapping second-level queries reuse decoded lists round
  after round instead of re-decoding varint by varint.  A second key
  plane (:meth:`PostingCache.get_derived` / ``put_derived``) holds
  **derived builds** — the evaluation kernel's columnar fetch lists,
  together with whatever sparse tables have lazily grown on them — under
  the same byte budget and the same generation invalidation, so repeat
  queries skip posting-to-column construction entirely.
* :class:`FetchMemo` — the per-evaluation memo of *derived* fetch
  results (columnar evaluation lists / top-k lists built from a
  posting), shared in shape by ``PrimaryEvaluator`` and
  ``PrimaryKEvaluator``.

Invalidation contract
---------------------
``PostingCache`` entries are tagged with the owning store's
**generation** (a counter every :class:`~repro.storage.kv.Store` bumps
on any ``put`` / ``delete`` / ``bulk_load``).  A lookup that observes a
different generation than the entry recorded is a miss and drops the
stale entry — so *any* write to the store invalidates every cached
posting, lazily, without the writer knowing about the cache.

``FetchMemo`` is never invalidated: its correctness comes from its
bounded lifetime.  One memo lives for exactly one evaluator run (one
``PrimaryEvaluator`` evaluation, one ``PrimaryKEvaluator`` round) during
which the underlying indexes are not mutated; cross-run reuse happens
one level below, in ``PostingCache``.

Cached columns and sparse tables obey the same two-level contract: the
``EvalColumns`` a ``FetchMemo`` holds live for one evaluator run; the
``EvalColumns`` the derived plane of ``PostingCache`` (or the
fingerprint-tagged memo of the in-memory indexes) holds live until the
store generation (or insert-cost fingerprint) moves.  Both kinds are
immutable shared objects, and the sparse tables lazily built on them are
pure functions of their columns — safe to grow on a cached object and
reuse from any later query.

Thread-safety contract
----------------------
``PostingCache`` is shared by every query a ``Database`` serves, so its
lookup and insert paths are guarded by one coarse lock (the critical
sections are dict operations — micro­seconds — so striping buys nothing
a measurement could see; the ``concurrency.posting_lock_waits`` counter
reports how often a thread actually blocked).  ``FetchMemo`` is
intentionally unlocked: its lifetime is one evaluator run on one thread
(see above), so it is never visible to two threads at once.

Cached posting lists are shared objects: callers must treat them as
immutable (every consumer in the engine already does — the list ops
build new lists).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, TypeVar

from ..errors import StorageError
from ..telemetry.collector import count as _telemetry_count

#: default budget for the decoded-posting cache (bytes, estimated)
DEFAULT_POSTING_CACHE_BYTES = 8 * 1024 * 1024

#: estimated in-memory cost of one cached list / one posting tuple; the
#: budget is a sizing knob, not an exact accounting, so a stable estimate
#: beats sys.getsizeof recursion on the hot path
_BASE_COST = 120
_ENTRY_COST = 96

#: key-plane marker separating derived builds (columnar fetch lists)
#: from the decoded postings they were built from
_DERIVED_PLANE = b"\x00derived"

_T = TypeVar("_T")


class CountedLock:
    """A lock that counts blocking acquisitions into ambient telemetry.

    The engine's lock-contention observability: entering the context is
    one non-blocking acquire on the fast (uncontended) path; only when
    the calling thread actually has to wait does the named counter tick
    — so a single-threaded run pays one C-level call and records
    nothing.  ``reentrant=True`` backs the lock with an :class:`RLock`
    for owners whose guarded methods call each other (the pager).
    """

    __slots__ = ("_lock", "_counter")

    def __init__(self, counter: str, reentrant: bool = False) -> None:
        self._lock = threading.RLock() if reentrant else threading.Lock()
        self._counter = counter

    def __enter__(self) -> "CountedLock":
        if not self._lock.acquire(blocking=False):
            _telemetry_count(self._counter)
            self._lock.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._lock.release()


class PostingCache:
    """Byte-budgeted LRU over decoded posting lists.

    Keys are ``(namespace_tag, key)`` pairs; values are the decoded
    posting lists exactly as the codecs return them.  Entries carry the
    store generation observed at decode time and are dropped when the
    generation moves (see the module docstring for the contract).
    """

    def __init__(self, max_bytes: int = DEFAULT_POSTING_CACHE_BYTES) -> None:
        if max_bytes < 0:
            raise StorageError(f"max_bytes must be >= 0, got {max_bytes}")
        self.max_bytes = max_bytes
        # keys are (namespace, key) for postings and
        # (namespace, key, _DERIVED_PLANE) for derived builds; both kinds
        # share one LRU order and one byte budget
        self._entries: "OrderedDict[tuple, tuple[int, int, object]]" = OrderedDict()
        self._used_bytes = 0
        # one shared-memory posting segment per store generation (the
        # process-pool read view); outside the byte budget — it is not
        # heap memory, and its lifetime is the generation's, not LRU's.
        # The entry is ``[generation, segment, pins]``: every get/put
        # hands the caller a pin, released with release_segment when the
        # query finishes, so a racing generation bump can only *retire*
        # a segment other queries' workers are still attaching to —
        # never unlink it from under them.
        self._segment: "list | None" = None
        self._retired_segments: "list[list]" = []
        # One coarse lock over the LRU structure: get/put are dict-sized
        # critical sections, so a single lock measured indistinguishable
        # from striping (see the module docstring's thread-safety notes).
        self._lock = CountedLock("concurrency.posting_lock_waits")

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def used_bytes(self) -> int:
        """Estimated bytes currently held (the budget's currency)."""
        return self._used_bytes

    def get(self, namespace: bytes, key: bytes, generation: int) -> "list | None":
        """The cached posting under ``(namespace, key)``, or ``None`` on
        a miss or when the entry predates ``generation``."""
        return self._lookup((namespace, key), generation, "cache.posting")

    def put(self, namespace: bytes, key: bytes, generation: int, posting: list) -> None:
        """Remember ``posting`` under ``(namespace, key)`` at ``generation``."""
        self._insert((namespace, key), generation, posting, len(posting))

    def get_derived(self, namespace: bytes, key: bytes, generation: int):
        """The cached derived build (columnar fetch list) under
        ``(namespace, key)``, or ``None`` on a miss or when the entry
        predates ``generation``.  Derived entries live in their own key
        plane, so they never shadow the posting cached under the same
        ``(namespace, key)``."""
        return self._lookup((namespace, key, _DERIVED_PLANE), generation, "kernel.column_cache")

    def put_derived(
        self, namespace: bytes, key: bytes, generation: int, value, entries: int
    ) -> None:
        """Remember a derived build at ``generation``; ``entries`` is the
        row count of the posting it was built from (the budget
        estimate's currency, same scale as a cached posting)."""
        self._insert((namespace, key, _DERIVED_PLANE), generation, value, entries)

    def _lookup(self, cache_key, generation: int, family: str):
        with self._lock:
            entry = self._entries.get(cache_key)
            if entry is None:
                _telemetry_count(family + "_misses")
                return None
            entry_generation, cost, value = entry
            if entry_generation != generation:
                # a write moved the store's generation: the entry is stale
                del self._entries[cache_key]
                self._used_bytes -= cost
                _telemetry_count(family + "_invalidations")
                _telemetry_count(family + "_misses")
                return None
            self._entries.move_to_end(cache_key)
            _telemetry_count(family + "_hits")
            return value

    def _insert(self, cache_key, generation: int, value, entry_count: int) -> None:
        if not self.max_bytes:
            return
        cost = _BASE_COST + _ENTRY_COST * entry_count
        if cost > self.max_bytes:
            return  # a single oversized list would evict everything else
        with self._lock:
            previous = self._entries.pop(cache_key, None)
            if previous is not None:
                self._used_bytes -= previous[1]
            self._entries[cache_key] = (generation, cost, value)
            self._used_bytes += cost
            entries = self._entries
            while self._used_bytes > self.max_bytes:
                _, (_, evicted_cost, _) = entries.popitem(last=False)
                self._used_bytes -= evicted_cost
                _telemetry_count("cache.posting_evictions")

    def get_segment(self, generation: int):
        """The registered shared-memory segment for ``generation`` —
        **pinned** for the caller (pair with :meth:`release_segment`) —
        or ``None``.  A registry holding a segment from an older
        generation retires it here — the lazy invalidation of the module
        docstring, applied to the process-pool read view.  A retired
        segment is only destroyed (close + unlink) once its last pin is
        released: unlinking earlier would break a concurrent query whose
        pool workers attach by name after the bump.  Workers already
        attached keep their mapping regardless (Linux keeps unlinked
        shared memory alive until the last map drops), so an in-flight
        parallel round still reads the generation it pinned."""
        stale = None
        try:
            with self._lock:
                entry = self._segment
                if entry is None:
                    return None
                if entry[0] != generation:
                    self._segment = None
                    stale = self._retire_locked(entry)
                    _telemetry_count("shm.segment_invalidations")
                    return None
                entry[2] += 1
                return entry[1]
        finally:
            if stale is not None:
                stale.destroy()

    def put_segment(self, generation: int, segment) -> "object":
        """Register ``segment`` as the shared read view at ``generation``.
        Returns the registered segment, pinned for the caller: on a build
        race the first writer wins and the incoming duplicate — which no
        worker can have attached yet — is destroyed."""
        loser = None
        try:
            with self._lock:
                entry = self._segment
                if entry is not None:
                    if entry[0] == generation:
                        entry[2] += 1
                        loser = segment
                        return entry[1]
                    loser = self._retire_locked(entry)
                self._segment = [generation, segment, 1]
                return segment
        finally:
            if loser is not None:
                loser.destroy()

    def release_segment(self, segment) -> None:
        """Drop one pin on ``segment``.  The last release of a retired
        segment destroys it; the registered segment just sheds the pin
        and stays available for the next query."""
        stale = None
        with self._lock:
            entry = self._segment
            if entry is not None and entry[1] is segment:
                entry[2] -= 1
                return
            for retired in self._retired_segments:
                if retired[0] is segment:
                    retired[1] -= 1
                    if retired[1] <= 0:
                        self._retired_segments.remove(retired)
                        stale = segment
                    break
        if stale is not None:
            stale.destroy()

    def _retire_locked(self, entry) -> "object | None":
        """Move a displaced registry entry toward destruction: with no
        outstanding pins return it for immediate destroy (caller, outside
        the lock); otherwise park it until the last release."""
        if entry[2] <= 0:
            return entry[1]
        self._retired_segments.append([entry[1], entry[2]])
        return None

    def drop_segment(self) -> None:
        """Destroy the registered segment, if any (database close path).
        Pinned segments are parked for their holders' releases instead of
        being unlinked mid-query."""
        stale = None
        leftovers = []
        with self._lock:
            entry = self._segment
            self._segment = None
            if entry is not None:
                stale = self._retire_locked(entry)
            for retired in list(self._retired_segments):
                if retired[1] <= 0:
                    self._retired_segments.remove(retired)
                    leftovers.append(retired[0])
        if stale is not None:
            stale.destroy()
        for segment in leftovers:
            segment.destroy()

    def clear(self) -> None:
        """Drop every entry (eager form of generation invalidation)."""
        with self._lock:
            self._entries.clear()
            self._used_bytes = 0
        self.drop_segment()

    def shutdown(self) -> None:
        """Release everything unconditionally — the database close path.

        Unlike :meth:`drop_segment`, outstanding pins do not park a
        segment: the owner is asserting no query is in flight, so the
        registered segment and every retired one are destroyed (close +
        unlink) right now.  A pin held past close is a caller bug; a
        ``/dev/shm`` segment surviving the database is worse — a
        long-running server opening and closing shards would leak kernel
        memory until reboot."""
        doomed = []
        with self._lock:
            self._entries.clear()
            self._used_bytes = 0
            entry, self._segment = self._segment, None
            if entry is not None:
                doomed.append(entry[1])
            doomed.extend(retired[0] for retired in self._retired_segments)
            self._retired_segments.clear()
        for segment in doomed:
            segment.destroy()


class FetchMemo:
    """Per-evaluation memo of derived fetch results.

    Keyed by ``(label, node_type, as_leaf)``; one instance lives for one
    evaluator run and is then discarded (the invalidation contract in
    the module docstring).  ``hits`` counts served lookups, feeding the
    evaluators' ``fetch_cache_hits`` statistics.
    """

    __slots__ = ("_entries", "hits")

    def __init__(self) -> None:
        self._entries: dict = {}
        self.hits = 0

    def get_or_build(self, key, build: "Callable[[], _T]") -> _T:
        """The memoized value under ``key``, building it on first use."""
        entry = self._entries.get(key)
        if entry is None:
            entry = build()
            self._entries[key] = entry
        else:
            self.hits += 1
        return entry
