"""Write-ahead log: crash durability for the page store.

The paper's implementation inherits durability from Berkeley DB; this
module is our equivalent.  In WAL mode the pager never touches the main
database file between checkpoints — every page write is appended to a
sidecar log (``<path>-wal``) as a checksummed *frame*, and a batch of
frames becomes durable atomically when a **commit frame** (the image of
the header page, page 0) is appended and the log is fsynced.

Log layout::

    +--------------------------------------------------+
    | header: magic, version, page_size, salt          |
    +--------------------------------------------------+
    | frame 0: page_no, commit, crc32 | page image     |
    | frame 1: ...                                     |
    +--------------------------------------------------+

Each frame's CRC32 covers the page image, the page number, the commit
marker, and the log's **salt**, so a frame can never be mistaken for one
from an earlier incarnation of the log (the salt changes on every
checkpoint).  ``commit`` is 0 for ordinary frames; a commit frame
carries the number of frames in its batch and is always a page-0 frame —
replaying it restores the header (page count, free-list head) along with
the data pages, which is what makes a batch atomic.

Protocol (single writer):

* **commit** — append the header page as a commit frame, flush, fsync
  the log.  The main file is untouched; readers in the same process see
  logged pages through the log's page index.
* **checkpoint** — after a commit, fold every logged page image back
  into the main file, fsync it, then truncate the log to zero and bump
  the salt.  Crash anywhere inside: the log still holds the committed
  frames, so recovery redoes the fold — checkpointing is idempotent.
* **recovery** (:func:`recover`) — on open, scan the log: frames up to
  the last valid commit frame are replayed into the main file; a torn
  tail (short frame, bad checksum, or uncommitted batch) is discarded.
  The store therefore reopens in exactly the last committed state —
  full rollback or full commit, never half.
"""

from __future__ import annotations

import os
import struct
import zlib

from ..errors import CorruptPageError, StorageError
from ..telemetry.collector import count as _telemetry_count

#: suffix of the log sidecar next to the main database file
WAL_SUFFIX = "-wal"
#: default log size that triggers a checkpoint at the next commit
DEFAULT_CHECKPOINT_BYTES = 4 * 1024 * 1024

_WAL_MAGIC = b"APXQWAL1"
_WAL_VERSION = 1
_WAL_HEADER_FMT = "<8sIII"  # magic, version, page_size, salt
_WAL_HEADER_SIZE = struct.calcsize(_WAL_HEADER_FMT)
_FRAME_FMT = "<QII"  # page_no, commit marker, crc32
_FRAME_HEADER_SIZE = struct.calcsize(_FRAME_FMT)

#: page number of the header page; a frame for it is a commit frame
HEADER_PAGE = 0


def default_opener(path: str, mode: str):
    """The opener used when none is injected (plain ``open``)."""
    return open(path, mode)


def fsync_file(file) -> None:
    """Fsync through the file object when it offers ``fsync()`` (the
    fault-injection wrapper does), else through its descriptor."""
    fsync = getattr(file, "fsync", None)
    if fsync is not None:
        fsync()
    else:
        os.fsync(file.fileno())


def frame_checksum(page_no: int, commit: int, salt: int, image: bytes) -> int:
    """CRC32 binding a frame to its page number, batch role, and log
    incarnation — a stale or relocated frame fails this check."""
    crc = zlib.crc32(struct.pack("<QII", page_no, commit, salt))
    return zlib.crc32(image, crc)


class WriteAheadLog:
    """The append side of the log, owned by a live pager.

    Created *after* :func:`recover` has run, so the log file it opens is
    always empty (or absent); any previous incarnation's frames were
    already replayed or discarded.  The header is written lazily on the
    first frame, with a salt one past the previous incarnation's.
    """

    def __init__(self, path: str, page_size: int, opener=None) -> None:
        self.path = path
        self._page_size = page_size
        opener = opener or default_opener
        salt = 0
        if os.path.exists(path):
            with opener(path, "rb") as existing:
                header = existing.read(_WAL_HEADER_SIZE)
            if len(header) == _WAL_HEADER_SIZE:
                magic, version, _, old_salt = struct.unpack(_WAL_HEADER_FMT, header)
                if magic == _WAL_MAGIC and version == _WAL_VERSION:
                    salt = old_salt
            self._file = opener(path, "r+b")
            self._file.seek(0)
            self._file.truncate(0)
        else:
            self._file = opener(path, "w+b")
        self._salt = (salt + 1) & 0xFFFFFFFF
        self._size = 0
        self._header_written = False
        #: latest frame image offset per page (committed and pending)
        self._index: dict[int, int] = {}
        self._pending = 0

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Current log size in bytes (the checkpoint trigger's input)."""
        return self._size

    @property
    def pending_frames(self) -> int:
        """Frames appended since the last commit."""
        return self._pending

    def _ensure_header(self) -> None:
        if self._header_written:
            return
        self._file.seek(0)
        self._file.write(
            struct.pack(_WAL_HEADER_FMT, _WAL_MAGIC, _WAL_VERSION, self._page_size, self._salt)
        )
        self._size = _WAL_HEADER_SIZE
        self._header_written = True

    def append(self, page_no: int, image: bytes, commit: int = 0) -> None:
        """Append one frame holding the raw page image of ``page_no``."""
        if len(image) != self._page_size:
            raise StorageError(
                f"WAL frame image must be exactly {self._page_size} bytes, "
                f"got {len(image)}"
            )
        self._ensure_header()
        crc = frame_checksum(page_no, commit, self._salt, image)
        self._file.seek(self._size)
        self._file.write(struct.pack(_FRAME_FMT, page_no, commit, crc) + image)
        self._index[page_no] = self._size + _FRAME_HEADER_SIZE
        self._size += _FRAME_HEADER_SIZE + self._page_size
        self._pending += 1
        _telemetry_count("wal.frames_written")
        _telemetry_count("wal.bytes_logged", _FRAME_HEADER_SIZE + self._page_size)

    def commit(self, header_image: bytes) -> None:
        """Make every pending frame durable: append the header page as
        the batch's commit frame, then flush and fsync the log."""
        self.append(HEADER_PAGE, header_image, commit=self._pending + 1)
        self._file.flush()
        fsync_file(self._file)
        self._pending = 0
        _telemetry_count("wal.commits")

    # ------------------------------------------------------------------
    # reading back
    # ------------------------------------------------------------------

    def read_page(self, page_no: int) -> "bytes | None":
        """The latest logged image of ``page_no``, or ``None`` when the
        page was never logged in this incarnation."""
        offset = self._index.get(page_no)
        if offset is None:
            return None
        self._file.seek(offset)
        image = self._file.read(self._page_size)
        if len(image) != self._page_size:
            raise CorruptPageError(f"{self.path}: short read on WAL frame of page {page_no}")
        _telemetry_count("wal.page_reads")
        return image

    def pages(self):
        """Yield ``(page_no, image)`` for the latest frame of every
        logged page, in page order (the checkpoint's work list)."""
        for page_no in sorted(self._index):
            yield page_no, self.read_page(page_no)

    def reset(self) -> None:
        """Empty the log after a checkpoint: truncate, bump the salt,
        fsync — stale frames can never come back to life."""
        self._file.seek(0)
        self._file.truncate(0)
        self._file.flush()
        fsync_file(self._file)
        self._salt = (self._salt + 1) & 0xFFFFFFFF
        self._size = 0
        self._header_written = False
        self._index.clear()
        self._pending = 0

    def close(self) -> None:
        self._file.close()


# ----------------------------------------------------------------------
# recovery
# ----------------------------------------------------------------------


def scan_log(wal_file, path: str = "<wal>"):
    """Parse a log file: returns ``(committed, tail_frames, page_size)``
    where ``committed`` maps page numbers to the latest committed image
    and ``tail_frames`` counts valid-but-uncommitted frames after the
    last commit.  Scanning stops at the first short or corrupt frame (a
    torn tail).  Returns ``None`` when the file has no usable header.
    """
    header = wal_file.read(_WAL_HEADER_SIZE)
    if len(header) < _WAL_HEADER_SIZE:
        return None
    magic, version, page_size, salt = struct.unpack(_WAL_HEADER_FMT, header)
    if magic != _WAL_MAGIC or version != _WAL_VERSION or page_size < 128:
        return None
    committed: dict[int, bytes] = {}
    pending: dict[int, bytes] = {}
    while True:
        frame_header = wal_file.read(_FRAME_HEADER_SIZE)
        if len(frame_header) < _FRAME_HEADER_SIZE:
            break
        page_no, commit, crc = struct.unpack(_FRAME_FMT, frame_header)
        image = wal_file.read(page_size)
        if len(image) < page_size:
            break
        if frame_checksum(page_no, commit, salt, image) != crc:
            break
        pending[page_no] = image
        if commit:
            committed.update(pending)
            pending.clear()
    return committed, len(pending), page_size


def recover(db_path: str, opener=None) -> int:
    """Replay the committed tail of ``<db_path>-wal`` into the main file.

    Called before the pager reads the header, in **every** durability
    mode — a store that crashed in WAL mode must come back committed
    even when reopened with ``durability="none"``.  Returns the number
    of pages replayed (0 when there is no log or nothing committed).

    Recovery is idempotent: it writes deterministic images at
    deterministic offsets and truncates the log only after the main
    file is fsynced, so recovering after a crash *during* recovery
    yields byte-identical results.
    """
    opener = opener or default_opener
    wal_path = db_path + WAL_SUFFIX
    try:
        wal_size = os.path.getsize(wal_path)
    except OSError:
        return 0  # no log, nothing to do
    if wal_size == 0:
        return 0
    with opener(wal_path, "rb") as wal_file:
        scanned = scan_log(wal_file, wal_path)
    replayed = 0
    if scanned is not None and scanned[0]:
        committed, _, page_size = scanned
        main_exists = os.path.exists(db_path) and os.path.getsize(db_path) > 0
        with opener(db_path, "r+b" if main_exists else "w+b") as main:
            for page_no, image in sorted(committed.items()):
                main.seek(page_no * page_size)
                main.write(image)
            main.flush()
            fsync_file(main)
        replayed = len(committed)
        _telemetry_count("wal.recoveries")
        _telemetry_count("wal.frames_replayed", replayed)
    # committed state is safe in the main file; drop the log (this also
    # rolls back any uncommitted or torn tail)
    with opener(wal_path, "r+b") as wal_file:
        wal_file.seek(0)
        wal_file.truncate(0)
        wal_file.flush()
        fsync_file(wal_file)
    return replayed
