"""Shared-memory posting segments for multi-process query execution.

A :class:`SharedPostingSegment` exports a set of decoded postings —
``(namespace_tag, key) -> columnar posting`` — into one read-only
``multiprocessing.shared_memory`` block, so process-pool workers attach
by name and evaluate over the columns **zero-copy**: only the segment
name and the tiny query payload ever cross the pipe, never a posting.

Layout (one flat block)::

    [ 8 bytes magic | 8 bytes data length | 8 bytes directory length ]
    [ data region: flat little-endian int64 columns, concatenated     ]
    [ directory: pickled {(tag, key): (word_offset, rows, columns)}   ]

Each posting's columns are stored consecutively (all ``pre`` values,
then all ``bound`` values, ...), so a fetch is ``columns`` memoryview
casts — no parsing, no copying.  Four columns rebuild a
:class:`~repro.storage.postings.PostingColumns`, two an
:class:`~repro.storage.postings.InstanceColumns`; both duck-type the
historical list-of-tuples shape, so the evaluation path is unchanged.

Lifecycle contract
------------------
The **builder** (the querying parent) owns the segment: it creates the
block, registers it in the :class:`~repro.storage.cache.PostingCache`
keyed by store generation, and destroys it (close + unlink) when the
generation moves or at interpreter exit.  **Workers** only ever attach
and close — never unlink.  On Linux, unlinking while workers still hold
the mapping is safe: the memory stays valid until the last map drops,
which gives generation snapshots for free — a worker mid-query keeps
reading the generation it attached, even if the parent has already
invalidated the segment for new queries.

Attaching on Python 3.11/3.12 re-registers the block with the
``resource_tracker``, which then warns (and double-unlinks) at exit for
segments the attacher does not own; :func:`attach_shared_memory` uses
``track=False`` where available (3.13+) and explicitly unregisters
otherwise, so the tracker stays clean (the lifecycle test asserts this).

Telemetry: ``shm.segments_built``, ``shm.bytes_exported``,
``shm.postings_exported``, ``shm.attaches``, and (from the cache
registry) ``shm.segment_invalidations``.
"""

from __future__ import annotations

import pickle
import struct
import weakref
from multiprocessing import resource_tracker, shared_memory

from ..errors import StorageError
from ..telemetry.collector import count as _telemetry_count
from .postings import InstanceColumns, PostingColumns, _Columns

_MAGIC = b"APXQSEG1"
_HEADER = struct.Struct("<8sQQ")


def _finalize_owned(shm) -> None:
    """Last-resort teardown of an *owned* block whose segment was
    garbage-collected (or is still alive at interpreter exit) without an
    explicit :meth:`SharedPostingSegment.destroy` — e.g. the registry
    that held it died with its database handle.  Unlink first: that is
    what unregisters the block from the resource tracker (no "leaked
    shared_memory objects" warning, no tracker-side double cleanup);
    the unmap may legitimately fail with outstanding buffer exports, in
    which case the mapping is reclaimed with the process."""
    try:
        shm.unlink()
    except FileNotFoundError:
        pass
    try:
        shm.close()
    except BufferError:  # views still exported; process teardown reclaims
        pass


def _register_noop(name, rtype) -> None:  # pragma: no cover - trivial
    pass


def attach_shared_memory(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing block without resource-tracker registration.

    Python 3.13 grew ``track=False`` for exactly this; on 3.11/3.12 the
    attach registers the segment as if this process owned it, so we
    suppress the registration for the duration of the attach.  An
    unregister-after-attach would be wrong, not just noisy: a forked
    worker shares the parent's tracker process, so its unregister would
    erase the *owner's* registration and the owner's eventual unlink
    would hit an unknown name (tracker KeyError tracebacks at exit) —
    while under spawn the worker's own fresh tracker would double-unlink
    a segment it does not own unless the registration never happens.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        register = resource_tracker.register
        resource_tracker.register = _register_noop
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = register


def _as_columns(posting) -> _Columns:
    """Any decoded posting shape as a columnar object (zero-copy when it
    already is one; empty postings export as zero-column entries)."""
    if isinstance(posting, _Columns):
        return posting
    rows = list(posting)
    if not rows:
        return InstanceColumns.from_rows([])
    if len(rows[0]) == 4:
        return PostingColumns.from_rows(rows)
    return InstanceColumns.from_rows(rows)


def _column_bytes(column) -> bytes:
    view = memoryview(column)
    try:
        return view.cast("B").tobytes()
    finally:
        view.release()


class SharedPostingSegment:
    """One read-only shared-memory block of exported posting columns.

    Built by the parent with :meth:`build`, attached by name in workers
    with :meth:`attach`.  :meth:`fetch` returns columnar postings whose
    buffers are memoryview casts straight into the block.
    """

    __slots__ = (
        "_shm",
        "_directory",
        "_data_offset",
        "_owner",
        "_views",
        "_finalizer",
        "__weakref__",
    )

    def __init__(self, shm, directory, data_offset: int, owner: bool) -> None:
        self._shm = shm
        self._directory = directory
        self._data_offset = data_offset
        self._owner = owner
        # memoryviews handed out by fetch(); released before close so the
        # underlying mmap can actually unmap (BufferError otherwise)
        self._views: list = []
        # owned blocks must be unlinked exactly once no matter how the
        # segment dies: destroy() detaches this, GC and interpreter exit
        # both trigger it otherwise
        self._finalizer = (
            weakref.finalize(self, _finalize_owned, shm) if owner else None
        )

    @classmethod
    def build(cls, postings: dict) -> "SharedPostingSegment":
        """Export ``{(tag, key): posting}`` into a fresh owned block."""
        directory: dict = {}
        blobs: list[bytes] = []
        word_offset = 0
        posting_count = 0
        for composite, posting in postings.items():
            columns = _as_columns(posting)
            names = columns.__slots__
            rows = len(columns)
            directory[composite] = (word_offset, rows, len(names))
            for name in names:
                blobs.append(_column_bytes(getattr(columns, name)))
            word_offset += len(names) * rows
            posting_count += 1
        directory_blob = pickle.dumps(directory, protocol=pickle.HIGHEST_PROTOCOL)
        data_length = word_offset * 8
        total = _HEADER.size + data_length + len(directory_blob)
        shm = shared_memory.SharedMemory(create=True, size=total)
        buffer = shm.buf
        _HEADER.pack_into(buffer, 0, _MAGIC, data_length, len(directory_blob))
        position = _HEADER.size
        for blob in blobs:
            buffer[position : position + len(blob)] = blob
            position += len(blob)
        buffer[position : position + len(directory_blob)] = directory_blob
        _telemetry_count("shm.segments_built")
        _telemetry_count("shm.bytes_exported", total)
        _telemetry_count("shm.postings_exported", posting_count)
        return cls(shm, directory, _HEADER.size, owner=True)

    @classmethod
    def attach(cls, name: str) -> "SharedPostingSegment":
        """Map an existing segment by name (worker side, never unlinks)."""
        shm = attach_shared_memory(name)
        magic, data_length, directory_length = _HEADER.unpack_from(shm.buf, 0)
        if magic != _MAGIC:
            shm.close()
            raise StorageError(f"shared segment {name!r} has bad magic {magic!r}")
        directory_offset = _HEADER.size + data_length
        directory = pickle.loads(
            bytes(shm.buf[directory_offset : directory_offset + directory_length])
        )
        _telemetry_count("shm.attaches")
        return cls(shm, directory, _HEADER.size, owner=False)

    @property
    def name(self) -> str:
        """The block name workers attach by."""
        return self._shm.name

    @property
    def size(self) -> int:
        return self._shm.size

    def __len__(self) -> int:
        return len(self._directory)

    def __contains__(self, composite: tuple) -> bool:
        return composite in self._directory

    def fetch(self, tag: bytes, key: bytes):
        """The exported posting under ``(tag, key)`` as a columnar object
        backed by the block, or ``None`` when it was not exported."""
        entry = self._directory.get((tag, key))
        if entry is None:
            return None
        word_offset, rows, column_count = entry
        if self._shm is None:
            raise StorageError("shared segment is closed")
        start = self._data_offset + word_offset * 8
        columns = []
        for index in range(column_count):
            begin = start + index * rows * 8
            view = self._shm.buf[begin : begin + rows * 8].cast("q")
            self._views.append(view)
            columns.append(view)
        if column_count == 4:
            return PostingColumns(*columns)
        return InstanceColumns(*columns)

    def close(self) -> None:
        """Release every handed-out view and unmap the block.  Columns
        fetched earlier become invalid (ValueError on access)."""
        if self._shm is None:
            return
        for view in self._views:
            try:
                view.release()
            except BufferError:  # pragma: no cover - still exported elsewhere
                pass
        self._views.clear()
        self._shm.close()
        self._shm = None

    def destroy(self) -> None:
        """Owner-side teardown: unmap and unlink the block.  Safe while
        workers still hold mappings (their memory stays valid)."""
        shm = self._shm
        self.close()
        if self._owner and shm is not None:
            if self._finalizer is not None:
                self._finalizer.detach()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._shm is None else self._shm.name
        return f"SharedPostingSegment({state}, postings={len(self._directory)})"
