"""Variable-length integer codecs used by the posting-list serializers.

The storage engine keeps posting lists (sequences of small, mostly
ascending integers) in a compact byte form.  We use the classic LEB128
unsigned varint together with zig-zag encoding for signed deltas, the same
building blocks real inverted-file systems use.
"""

from __future__ import annotations

from ..errors import StorageError

_CONTINUATION = 0x80
_PAYLOAD_MASK = 0x7F
_MAX_VARINT_BYTES = 10  # enough for any 64-bit value


def encode_uvarint(value: int, out: bytearray) -> None:
    """Append the LEB128 encoding of a non-negative ``value`` to ``out``."""
    if value < 0:
        raise StorageError(f"cannot uvarint-encode negative value {value}")
    while True:
        byte = value & _PAYLOAD_MASK
        value >>= 7
        if value:
            out.append(byte | _CONTINUATION)
        else:
            out.append(byte)
            return


def decode_uvarint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode one LEB128 value from ``data`` starting at ``offset``.

    Returns ``(value, next_offset)``.
    """
    result = 0
    shift = 0
    pos = offset
    for _ in range(_MAX_VARINT_BYTES):
        if pos >= len(data):
            raise StorageError("truncated uvarint")
        byte = data[pos]
        pos += 1
        result |= (byte & _PAYLOAD_MASK) << shift
        if not byte & _CONTINUATION:
            return result, pos
        shift += 7
    raise StorageError("uvarint too long (more than 10 bytes)")


def decode_uvarint_block(data: bytes, offset: int, count: int) -> tuple[list[int], int]:
    """Decode ``count`` consecutive LEB128 values in one buffer scan.

    This is the block decode kernel under the posting codecs: instead of
    one :func:`decode_uvarint` call (with its bounds bookkeeping) per
    value, the buffer — any bytes-like object, including a
    :class:`memoryview` — is walked once in a single loop, with the
    common one-byte case handled without entering the continuation loop.
    Returns ``(values, next_offset)``.
    """
    values: list[int] = []
    append = values.append
    pos = offset
    try:
        for _ in range(count):
            byte = data[pos]
            pos += 1
            if byte < _CONTINUATION:
                append(byte)
                continue
            result = byte & _PAYLOAD_MASK
            shift = 7
            while True:
                byte = data[pos]
                pos += 1
                if byte < _CONTINUATION:
                    result |= byte << shift
                    break
                result |= (byte & _PAYLOAD_MASK) << shift
                shift += 7
                if shift > 63:
                    raise StorageError("uvarint too long (more than 10 bytes)")
            append(result)
    except IndexError:
        raise StorageError("truncated uvarint") from None
    return values, pos


def zigzag_encode(value: int) -> int:
    """Map a signed integer to an unsigned one with small absolute values
    staying small (0, -1, 1, -2, ... -> 0, 1, 2, 3, ...)."""
    return (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1


def zigzag_decode(value: int) -> int:
    """Inverse of :func:`zigzag_encode`."""
    return (value >> 1) if not value & 1 else -((value + 1) >> 1)


def encode_svarint(value: int, out: bytearray) -> None:
    """Append a zig-zag + LEB128 encoding of a signed ``value``."""
    encode_uvarint(zigzag_encode(value), out)


def decode_svarint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode one signed varint; returns ``(value, next_offset)``."""
    raw, pos = decode_uvarint(data, offset)
    return zigzag_decode(raw), pos


def encode_uvarint_list(values: list[int]) -> bytes:
    """Encode a list of non-negative integers, length-prefixed."""
    out = bytearray()
    encode_uvarint(len(values), out)
    for value in values:
        encode_uvarint(value, out)
    return bytes(out)


def decode_uvarint_list(data: bytes, offset: int = 0) -> tuple[list[int], int]:
    """Decode a length-prefixed list of non-negative integers."""
    count, pos = decode_uvarint(data, offset)
    return decode_uvarint_block(data, pos, count)


def encode_delta_list(values: list[int]) -> bytes:
    """Delta-encode a (typically ascending) integer sequence.

    The first value is stored as-is (zig-zag), subsequent values as signed
    deltas.  Ascending postings therefore compress to ~1 byte per entry.
    """
    out = bytearray()
    encode_uvarint(len(values), out)
    previous = 0
    for value in values:
        encode_svarint(value - previous, out)
        previous = value
    return bytes(out)


def decode_delta_list(data: bytes, offset: int = 0) -> tuple[list[int], int]:
    """Inverse of :func:`encode_delta_list`."""
    count, pos = decode_uvarint(data, offset)
    raws, pos = decode_uvarint_block(data, pos, count)
    values = []
    append = values.append
    current = 0
    for raw in raws:
        current += (raw >> 1) if not raw & 1 else -((raw + 1) >> 1)
        append(current)
    return values, pos
