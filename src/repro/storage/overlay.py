"""Snapshot overlays: the writer-preserved read view of MVCC-lite.

A stored database has exactly one copy of every index posting — the bytes
in the key-value store.  When a writer mutates a posting while a snapshot
reader is pinned to the previous store generation, the old decoded value
is *preserved* into the snapshot's :class:`SnapshotOverlay` first
(copy-on-write, performed by the writer under its mutation lock).  A
reader consults the overlay before the store: a hit serves the pinned
value, a miss means the key was never touched since the snapshot was
taken, so the store's current value is still the pinned generation's
value.

Overlays are *ambient* per thread, exactly like the telemetry collector:
the stored indexes check :func:`current_overlay` on every fetch, query
code activates a snapshot's overlay with :func:`using_overlay` around the
evaluation, and :class:`repro.concurrent.QueryPool` re-activates the
submitting thread's overlay inside its worker threads so parallel rounds
read the same generation.

Thread-safety relies on the shape of the data: the writer only ever
*adds* entries (``setdefault`` under the database's writer lock, one
writer at a time), readers only ``get`` — both single dict operations,
atomic under CPython.  A preserved value, like every cached posting, is
shared and must be treated as immutable.
"""

from __future__ import annotations

import threading
from collections.abc import Iterator
from contextlib import contextmanager


class _Missing:
    """Sentinel distinguishing "key not preserved" from any real value
    (including an empty posting list, which means "key did not exist at
    the pinned generation")."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<MISSING>"


#: returned by :meth:`SnapshotOverlay.get` when a key was never preserved
MISSING = _Missing()


class SnapshotOverlay:
    """Pinned decoded values for one snapshot of a stored database.

    Keys are ``(namespace_tag, key)`` byte pairs; values are the decoded
    posting lists the stored indexes would have produced at the pinned
    generation (``[]`` for keys that did not exist then).
    """

    __slots__ = ("generation", "_data", "__weakref__")

    def __init__(self, generation: int) -> None:
        #: store generation this overlay pins
        self.generation = generation
        self._data: dict[tuple[bytes, bytes], object] = {}

    def preserve(self, tag: bytes, key: bytes, value: object) -> bool:
        """Record the pre-mutation ``value`` of ``tag``/``key`` unless one
        is already pinned (the first preservation wins: it is the value
        at the pinned generation).  Returns whether a value was added."""
        data = self._data
        composite = (tag, key)
        if composite in data:
            return False
        data[composite] = value
        return True

    def get(self, tag: bytes, key: bytes) -> object:
        """The pinned value of ``tag``/``key``, or :data:`MISSING` when
        the key was never touched after the snapshot was taken."""
        return self._data.get((tag, key), MISSING)

    def items(self) -> list[tuple[tuple[bytes, bytes], object]]:
        """A point-in-time list of ``((tag, key), value)`` pairs — the
        shared-memory segment builder applies these on top of the store's
        current values so exported postings match the pinned generation.
        A list copy, not a live view: the writer may add entries while
        the caller iterates."""
        return list(self._data.items())

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:
        return f"SnapshotOverlay(generation={self.generation}, pinned={len(self._data)})"


# ----------------------------------------------------------------------
# ambient activation (thread-local)
# ----------------------------------------------------------------------


class _OverlayState(threading.local):
    def __init__(self) -> None:
        self.active: "SnapshotOverlay | None" = None
        self.stack: list["SnapshotOverlay | None"] = []


_state = _OverlayState()


def current_overlay() -> "SnapshotOverlay | None":
    """The overlay stored-index fetches consult *on this thread*."""
    return _state.active


@contextmanager
def using_overlay(overlay: "SnapshotOverlay | None") -> Iterator["SnapshotOverlay | None"]:
    """Activate ``overlay`` on the calling thread for the block (``None``
    deactivates, restoring direct store reads).  Nests like
    :func:`repro.telemetry.collector.collecting`."""
    state = _state
    state.stack.append(state.active)
    state.active = overlay
    try:
        yield overlay
    finally:
        state.active = state.stack.pop()
