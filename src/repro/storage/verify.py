"""Offline integrity checking: walk a store's pages and WAL frames.

``repro verify`` (and :func:`verify_store`) reads a database file *raw*
— no pager, no recovery, no writes — and checks every checksum it can
find: the header, the CRC32 of each page, and the frame checksums of a
write-ahead log sidecar if one is present.  Because nothing is modified,
it is safe to run on a store that just crashed, *before* deciding to
reopen it (reopening triggers recovery).

A page that is all zeros is reported as *empty*, not corrupt: the pager
allocates pages without materializing them, so a zero gap below the
end of the file is a page that was never written, which no legally
written page can look like (a written page always carries a non-zero
CRC prefix over its zero-padded payload).
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field

from ..errors import StorageError
from .wal import WAL_SUFFIX, scan_log

_MAGIC = b"APXQPG01"
_HEADER_FMT = "<8sIIQ"
_HEADER_SIZE = struct.calcsize(_HEADER_FMT)
_PAGE_PREFIX_FMT = "<I"
_PAGE_PREFIX_SIZE = struct.calcsize(_PAGE_PREFIX_FMT)


@dataclass
class VerifyReport:
    """What :func:`verify_store` found.

    ``ok`` is the headline: no header damage and no page checksum
    failures.  A torn WAL tail is *not* a failure — it is the normal
    residue of a crash, and recovery will discard it — but it is
    reported so an operator knows a crash happened.
    """

    path: str
    page_size: int = 0
    page_count: int = 0
    pages_checked: int = 0
    empty_pages: int = 0
    #: (page_no, reason) for every page that failed its checks
    page_failures: "list[tuple[int, str]]" = field(default_factory=list)
    #: header-level damage (bad magic, truncated header, ...)
    header_failures: "list[str]" = field(default_factory=list)
    wal_present: bool = False
    wal_committed_frames: int = 0
    wal_uncommitted_frames: int = 0
    wal_failures: "list[str]" = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not (self.page_failures or self.header_failures or self.wal_failures)

    def format(self) -> str:
        """Human-readable rendering for the CLI."""
        lines = [f"verify: {self.path}"]
        if self.header_failures:
            for reason in self.header_failures:
                lines.append(f"  header: FAIL ({reason})")
            return "\n".join(lines)
        lines.append(
            f"  pages: {self.pages_checked} checked, {self.empty_pages} empty, "
            f"{len(self.page_failures)} failed "
            f"(page size {self.page_size}, count {self.page_count})"
        )
        for page_no, reason in self.page_failures[:20]:
            lines.append(f"    page {page_no}: {reason}")
        if len(self.page_failures) > 20:
            lines.append(f"    ... and {len(self.page_failures) - 20} more")
        if self.wal_present:
            lines.append(
                f"  wal: {self.wal_committed_frames} committed frame(s), "
                f"{self.wal_uncommitted_frames} uncommitted (will roll back "
                f"on next open)"
            )
            for reason in self.wal_failures:
                lines.append(f"    wal: FAIL ({reason})")
        else:
            lines.append("  wal: none")
        lines.append(f"  result: {'ok' if self.ok else 'FAIL'}")
        return "\n".join(lines)


def verify_store(path: str) -> VerifyReport:
    """Check every page and WAL frame checksum of the store at ``path``.

    Read-only; raises :class:`~repro.errors.StorageError` only when the
    file itself cannot be read (missing file, permission) — structural
    damage is reported in the returned :class:`VerifyReport`, not
    raised.
    """
    report = VerifyReport(path=path)
    try:
        size = os.path.getsize(path)
    except OSError as error:
        raise StorageError(f"{path}: cannot verify ({error})") from error
    with open(path, "rb") as handle:
        header = handle.read(_HEADER_SIZE)
        if len(header) < _HEADER_SIZE:
            report.header_failures.append(
                f"truncated header: {len(header)} of {_HEADER_SIZE} bytes"
            )
            return report
        magic, page_size, page_count, _ = struct.unpack(_HEADER_FMT, header)
        if magic != _MAGIC:
            report.header_failures.append(f"bad magic {magic!r}")
            return report
        if page_size < 128 or page_count < 1:
            report.header_failures.append(
                f"implausible geometry (page_size={page_size}, page_count={page_count})"
            )
            return report
        report.page_size = page_size
        report.page_count = page_count
        # pages wholly beyond EOF were allocated but never materialized;
        # count them without issuing one read per page (a corrupt header
        # can claim billions of pages)
        materialized = min(page_count, size // page_size + 1)
        report.empty_pages += page_count - materialized
        for page_no in range(1, materialized):
            handle.seek(page_no * page_size)
            raw = handle.read(page_size)
            if not raw:
                report.empty_pages += 1  # beyond EOF: never materialized
                continue
            report.pages_checked += 1
            if len(raw) < page_size and page_no * page_size + len(raw) < size:
                report.page_failures.append((page_no, "short page inside the file"))
                continue
            if raw.count(0) == len(raw):
                report.pages_checked -= 1
                report.empty_pages += 1  # zero gap: allocated, never written
                continue
            if len(raw) < _PAGE_PREFIX_SIZE:
                report.page_failures.append((page_no, "page shorter than its checksum"))
                continue
            (stored_crc,) = struct.unpack_from(_PAGE_PREFIX_FMT, raw, 0)
            payload = raw[_PAGE_PREFIX_SIZE:page_size].ljust(
                page_size - _PAGE_PREFIX_SIZE, b"\x00"
            )
            if zlib.crc32(payload) != stored_crc:
                report.page_failures.append((page_no, "checksum mismatch"))

    wal_path = path + WAL_SUFFIX
    if os.path.exists(wal_path) and os.path.getsize(wal_path) > 0:
        report.wal_present = True
        with open(wal_path, "rb") as wal_file:
            scanned = scan_log(wal_file, wal_path)
        if scanned is None:
            report.wal_failures.append("unreadable WAL header")
        else:
            committed, uncommitted, wal_page_size = scanned
            report.wal_committed_frames = len(committed)
            report.wal_uncommitted_frames = uncommitted
            if report.page_size and wal_page_size != report.page_size:
                report.wal_failures.append(
                    f"WAL page size {wal_page_size} != store page size {report.page_size}"
                )
    return report
