"""Page-based file manager for the embedded storage engine.

The pager owns a single file divided into fixed-size pages.  Page 0 is a
header page holding the magic number, the page size, the total page count,
and the head of the free list.  Freed pages are chained through their first
eight bytes and reused before the file grows.

Every page is checksummed (CRC32 over the payload) so torn or corrupted
reads surface as :class:`~repro.errors.CorruptPageError` instead of silent
garbage — the same contract Berkeley DB gives the paper's implementation.

An **LRU page cache** (the role of Berkeley DB's buffer pool in the
paper's §8 setup) sits in front of the file: hot pages — B+tree root and
internal nodes above all — are served from memory without a seek, a read,
or a CRC check.  The cache is write-through, so a cached page is always
byte-identical to the file, and ``cache_pages=0`` disables it entirely
(every read then hits the file exactly as before).

**Durability** is selected per pager (``durability="none"`` or
``"wal"``).  In WAL mode every page write is appended to a checksummed
write-ahead log (:mod:`repro.storage.wal`) instead of the main file;
:meth:`commit` makes a batch of writes atomically durable, and the log
is folded back into the main file by size-triggered checkpoints.  A
store killed mid-write reopens in exactly its last committed state —
recovery runs automatically on open, in every mode.  With
``durability="none"`` the write path is byte-identical to the engine
before the WAL existed.

The pager is **thread-safe**: one coarse reentrant lock guards the file
handle (a seek+read pair must not interleave), the LRU cache, and the
free-list/header bookkeeping.  Blocking acquisitions are counted as
``concurrency.pager_lock_waits``, so lock contention is observable per
query rather than guessed at.

Page reads and writes report into the ambient telemetry collector
(``storage.pages_read`` / ``storage.pages_written`` count page I/O;
``cache.page_*`` account for the cache; the ``wal.*`` family — frames
written, bytes logged, commits, checkpoints, recoveries, frames
replayed — accounts for the log), so a query against a stored database
accounts for every page it touches.
"""

from __future__ import annotations

import os
import struct
import zlib
from collections import OrderedDict

from ..errors import CorruptPageError, StorageError
from ..telemetry.collector import count as _telemetry_count
from .cache import CountedLock
from .wal import (
    DEFAULT_CHECKPOINT_BYTES,
    WAL_SUFFIX,
    WriteAheadLog,
    default_opener,
    fsync_file,
    recover,
)

DEFAULT_PAGE_SIZE = 4096
#: default page-cache capacity in pages (1 MiB at the default page size)
DEFAULT_CACHE_PAGES = 256
#: the two durability modes of the pager
DURABILITY_MODES = ("none", "wal")
_MAGIC = b"APXQPG01"
_HEADER_FMT = "<8sIIQ"  # magic, page_size, page_count, free_list_head
_HEADER_SIZE = struct.calcsize(_HEADER_FMT)
_PAGE_PREFIX_FMT = "<I"  # crc32 of the payload
_PAGE_PREFIX_SIZE = struct.calcsize(_PAGE_PREFIX_FMT)
_FREE_LINK_FMT = "<Q"
_FREE_LINK_SIZE = struct.calcsize(_FREE_LINK_FMT)
_NO_PAGE = 0  # page 0 is the header, so 0 doubles as "null"


class Pager:
    """Fixed-size page manager over a single file.

    Parameters
    ----------
    path:
        File to open or create.
    page_size:
        Size of each page in bytes (only consulted when creating a new
        file; an existing file dictates its own page size).
    cache_pages:
        Capacity of the LRU page cache in pages; ``0`` disables caching.
    durability:
        ``"none"`` (writes go straight to the file, durable at
        :meth:`sync`/:meth:`close` only if the process survives) or
        ``"wal"`` (writes go through the write-ahead log; :meth:`commit`
        batches are atomic and survive a kill at any I/O boundary).
    wal_checkpoint_bytes:
        Log size that triggers a checkpoint at the next commit
        (WAL mode only).
    opener:
        ``open(path, mode)`` replacement for every file the pager
        touches — the fault-injection hook
        (:meth:`repro.storage.faults.FaultInjector.opener`).
    must_exist:
        Refuse to create a missing or empty file; raise a typed
        :class:`~repro.errors.StorageError` instead (what
        ``Database.open`` wants: opening a database is not creating one).
    """

    def __init__(
        self,
        path: str,
        page_size: int = DEFAULT_PAGE_SIZE,
        cache_pages: int = DEFAULT_CACHE_PAGES,
        durability: str = "none",
        wal_checkpoint_bytes: int = DEFAULT_CHECKPOINT_BYTES,
        opener=None,
        must_exist: bool = False,
    ) -> None:
        if page_size < 128:
            raise StorageError(f"page size {page_size} too small (min 128)")
        if cache_pages < 0:
            raise StorageError(f"cache_pages must be >= 0, got {cache_pages}")
        if durability not in DURABILITY_MODES:
            raise StorageError(
                f"unknown durability {durability!r}; expected one of {DURABILITY_MODES}"
            )
        if wal_checkpoint_bytes <= 0:
            raise StorageError(
                f"wal_checkpoint_bytes must be > 0, got {wal_checkpoint_bytes}"
            )
        self.path = path
        self.durability = durability
        self._opener = opener or default_opener
        self._closed = False
        self._io_failed = False
        # One coarse reentrant lock over the whole pager: the file handle
        # (seek+read is a two-step critical section), the LRU cache, and
        # the free-list/header bookkeeping all share it.  Reads are
        # memory- or page-sized, so a reader/writer split measured within
        # noise of the single lock; contention is observable through the
        # concurrency.pager_lock_waits counter.
        self._lock = CountedLock("concurrency.pager_lock_waits", reentrant=True)
        self._cache: "OrderedDict[int, bytes]" = OrderedDict()
        self._cache_capacity = cache_pages
        self._wal: "WriteAheadLog | None" = None
        self._wal_checkpoint_bytes = wal_checkpoint_bytes
        #: pages replayed from the log on open (0 when no recovery ran)
        self.recovered_frames = 0

        # A crashed WAL-mode store must reopen committed in *every*
        # durability mode, so recovery runs before the header is read.
        if os.path.exists(path + WAL_SUFFIX):
            self.recovered_frames = recover(path, self._opener)

        try:
            size = os.path.getsize(path)
        except OSError:
            size = -1
        exists = size > 0
        if must_exist and not exists:
            reason = "no such file" if size < 0 else "file is empty"
            raise StorageError(f"{path}: not a database file ({reason})")
        try:
            self._file = self._opener(path, "r+b" if exists else "w+b")
        except OSError as error:
            raise StorageError(f"{path}: cannot open database file ({error})") from error
        try:
            if exists:
                self._read_header()
            else:
                self.page_size = page_size
                self.page_count = 1  # the header page
                self._free_list_head = _NO_PAGE
                # make creation itself crash-safe: a killed build leaves
                # at worst a valid empty store, never a headerless file
                try:
                    self._write_header()
                    self._file.flush()
                    if durability == "wal":
                        fsync_file(self._file)
                except OSError as error:
                    raise StorageError(
                        f"{path}: cannot initialize database file ({error})"
                    ) from error
            if durability == "wal":
                self._wal = WriteAheadLog(path + WAL_SUFFIX, self.page_size, self._opener)
        except BaseException:
            self._file.close()
            raise

    # ------------------------------------------------------------------
    # header management
    # ------------------------------------------------------------------

    def _header_bytes(self) -> bytes:
        return struct.pack(
            _HEADER_FMT, _MAGIC, self.page_size, self.page_count, self._free_list_head
        )

    def _read_header(self) -> None:
        self._file.seek(0)
        raw = self._file.read(_HEADER_SIZE)
        if len(raw) < _HEADER_SIZE:
            raise CorruptPageError(
                f"{self.path}: not a database file (truncated header: "
                f"{len(raw)} of {_HEADER_SIZE} bytes)"
            )
        magic, page_size, page_count, free_head = struct.unpack(_HEADER_FMT, raw)
        if magic != _MAGIC:
            raise CorruptPageError(f"{self.path}: not a database file (bad magic {magic!r})")
        if page_size < 128 or page_count < 1:
            raise CorruptPageError(
                f"{self.path}: corrupt header (page_size={page_size}, "
                f"page_count={page_count})"
            )
        self.page_size = page_size
        self.page_count = page_count
        self._free_list_head = free_head

    def _write_header(self) -> None:
        self._file.seek(0)
        self._file.write(self._header_bytes())

    # ------------------------------------------------------------------
    # page allocation
    # ------------------------------------------------------------------

    @property
    def payload_size(self) -> int:
        """Number of usable bytes per page (page size minus checksum)."""
        return self.page_size - _PAGE_PREFIX_SIZE

    def allocate(self) -> int:
        """Return the number of a fresh (or recycled) page.

        Allocation is pure bookkeeping: growing the file updates only the
        in-memory page count (the header is persisted on :meth:`sync` /
        :meth:`close`), and the page's contents are undefined until its
        first :meth:`write` — callers always write an allocated page
        before reading it.  This keeps bulk-load-style allocation storms
        at one page write per page instead of three.
        """
        with self._lock:
            self._check_open()
            if self._free_list_head != _NO_PAGE:
                page_no = self._free_list_head
                payload = self.read(page_no)
                (next_free,) = struct.unpack_from(_FREE_LINK_FMT, payload, 0)
                self._free_list_head = next_free
                return page_no
            page_no = self.page_count
            self.page_count += 1
            return page_no

    def free(self, page_no: int) -> None:
        """Return ``page_no`` to the free list for reuse.

        Like :meth:`allocate`, the header update is deferred to
        :meth:`sync` / :meth:`close`; only the free-list link is written.
        """
        with self._lock:
            self._check_open()
            self._validate_page_no(page_no)
            link = struct.pack(_FREE_LINK_FMT, self._free_list_head)
            self.write(page_no, link)
            self._free_list_head = page_no

    # ------------------------------------------------------------------
    # page IO
    # ------------------------------------------------------------------

    def _decode_page(self, page_no: int, raw: bytes) -> bytes:
        """Checksum-verify one raw page image and return its payload."""
        if len(raw) < _PAGE_PREFIX_SIZE:
            raise CorruptPageError(f"{self.path}: short read on page {page_no}")
        (stored_crc,) = struct.unpack_from(_PAGE_PREFIX_FMT, raw, 0)
        payload = raw[_PAGE_PREFIX_SIZE : self.page_size]
        if zlib.crc32(payload) != stored_crc:
            raise CorruptPageError(f"{self.path}: checksum mismatch on page {page_no}")
        return payload

    def read(self, page_no: int) -> bytes:
        """Return the payload of ``page_no`` — from the page cache when
        resident, then from the write-ahead log (WAL mode), otherwise
        read from the file and CRC-verified."""
        with self._lock:
            self._check_open()
            self._validate_page_no(page_no)
            cache = self._cache
            cached = cache.get(page_no)
            if cached is not None:
                cache.move_to_end(page_no)
                _telemetry_count("cache.page_hits")
                return cached
            if self._cache_capacity:
                _telemetry_count("cache.page_misses")
            if self._wal is not None:
                image = self._wal.read_page(page_no)
                if image is not None:
                    payload = self._decode_page(page_no, image)
                    self._cache_store(page_no, payload)
                    return payload
            _telemetry_count("storage.pages_read")
            self._file.seek(page_no * self.page_size)
            raw = self._file.read(self.page_size)
            payload = self._decode_page(page_no, raw)
            self._cache_store(page_no, payload)
            return payload

    def write(self, page_no: int, payload: bytes) -> None:
        """Write ``payload`` (padded with zeros) to ``page_no``.

        In WAL mode the page image is appended to the log (the main
        file is untouched until a checkpoint); otherwise it is written
        through to the file.  Either way a cached copy of the page is
        refreshed so subsequent reads stay coherent.
        """
        with self._lock:
            self._check_open()
            if page_no <= 0 or page_no > self.page_count:
                raise StorageError(
                    f"page {page_no} out of range (count {self.page_count})"
                )
            if len(payload) > self.payload_size:
                raise StorageError(
                    f"payload of {len(payload)} bytes exceeds page capacity "
                    f"{self.payload_size}"
                )
            _telemetry_count("storage.pages_written")
            padded = payload.ljust(self.payload_size, b"\x00")
            crc = zlib.crc32(padded)
            image = struct.pack(_PAGE_PREFIX_FMT, crc) + padded
            if self._wal is not None:
                self._wal.append(page_no, image)
            else:
                self._file.seek(page_no * self.page_size)
                self._file.write(image)
            self._cache_store(page_no, padded)

    def _cache_store(self, page_no: int, payload: bytes) -> None:
        capacity = self._cache_capacity
        if not capacity:
            return
        cache = self._cache
        cache[page_no] = payload
        cache.move_to_end(page_no)
        if len(cache) > capacity:
            cache.popitem(last=False)
            _telemetry_count("cache.page_evictions")

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------

    def commit(self) -> None:
        """Make every write since the last commit atomically durable.

        WAL mode: append the commit frame (the header page image) and
        fsync the log; a crash from now on replays the batch, a crash
        before now rolls it back entirely.  When the log has grown past
        ``wal_checkpoint_bytes`` it is folded into the main file.

        In ``durability="none"`` mode this is :meth:`sync` (flush +
        fsync, with no atomicity across the batch).
        """
        with self._lock:
            self._check_open()
            wal = self._wal
            if wal is None:
                self.sync()
                return
            if wal.pending_frames == 0 and wal.size == 0:
                return  # nothing logged since the last checkpoint
            try:
                wal.commit(self._header_bytes().ljust(self.page_size, b"\x00"))
            except OSError as error:
                self._io_failed = True
                raise StorageError(f"{self.path}: commit failed ({error})") from error
            if wal.size >= self._wal_checkpoint_bytes:
                self._checkpoint()

    def checkpoint(self) -> None:
        """Commit pending writes, then fold the whole log back into the
        main file (WAL mode; a no-op sync otherwise)."""
        with self._lock:
            self._check_open()
            if self._wal is None:
                self.sync()
                return
            self.commit()
            if self._wal.size:
                self._checkpoint()

    def _checkpoint(self) -> None:
        """Fold every committed frame into the main file, fsync it, then
        reset the log.  Only called with no pending (uncommitted) frames.
        Crash-safe: the log is truncated only after the main file is
        durable, so recovery simply redoes an interrupted fold."""
        wal = self._wal
        assert wal is not None and wal.pending_frames == 0
        try:
            pages = 0
            for page_no, image in wal.pages():
                self._file.seek(page_no * self.page_size)
                self._file.write(image)
                pages += 1
            self._file.flush()
            fsync_file(self._file)
            wal.reset()
        except OSError as error:
            self._io_failed = True
            raise StorageError(f"{self.path}: checkpoint failed ({error})") from error
        _telemetry_count("wal.checkpoints")
        _telemetry_count("wal.checkpoint_pages", pages)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def sync(self) -> None:
        """Flush buffered writes and the header to the OS.

        In WAL mode this is :meth:`commit` — the header travels inside
        the commit frame and the main file is left to the checkpoint.
        """
        with self._lock:
            self._check_open()
            if self._wal is not None:
                self.commit()
                return
            try:
                self._write_header()
                self._file.flush()
                fsync_file(self._file)
            except OSError as error:
                self._io_failed = True
                raise StorageError(f"{self.path}: sync failed ({error})") from error

    def close(self) -> None:
        """Flush and close the underlying file(s).

        Idempotent (a second close is a no-op) and exception-safe: the
        files are closed and the pager marked closed even when the final
        flush fails, and after a failed :meth:`sync`/:meth:`commit` no
        re-flush is attempted — the error was already reported once.

        In WAL mode, closing commits pending writes and checkpoints the
        log, so a cleanly closed store has an empty log and is readable
        in any durability mode.
        """
        with self._lock:
            if self._closed:
                return
            try:
                if not self._io_failed:
                    if self._wal is not None:
                        self.commit()
                        if self._wal.size:
                            self._checkpoint()
                    else:
                        self._write_header()
                        self._file.flush()
            except OSError as error:
                self._io_failed = True
                raise StorageError(f"{self.path}: close failed ({error})") from error
            finally:
                self._closed = True
                if self._wal is not None:
                    try:
                        self._wal.close()
                    except OSError:
                        pass
                try:
                    self._file.close()
                except OSError:
                    pass
                self._cache.clear()

    def __enter__(self) -> "Pager":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError(f"{self.path}: pager is closed")

    def _validate_page_no(self, page_no: int) -> None:
        if page_no <= 0 or page_no >= self.page_count:
            raise StorageError(f"page {page_no} out of range (count {self.page_count})")
