"""Page-based file manager for the embedded storage engine.

The pager owns a single file divided into fixed-size pages.  Page 0 is a
header page holding the magic number, the page size, the total page count,
and the head of the free list.  Freed pages are chained through their first
eight bytes and reused before the file grows.

Every page is checksummed (CRC32 over the payload) so torn or corrupted
reads surface as :class:`~repro.errors.CorruptPageError` instead of silent
garbage — the same contract Berkeley DB gives the paper's implementation.

An **LRU page cache** (the role of Berkeley DB's buffer pool in the
paper's §8 setup) sits in front of the file: hot pages — B+tree root and
internal nodes above all — are served from memory without a seek, a read,
or a CRC check.  The cache is write-through, so a cached page is always
byte-identical to the file, and ``cache_pages=0`` disables it entirely
(every read then hits the file exactly as before).

Page reads and writes report into the ambient telemetry collector
(``storage.pages_read`` / ``storage.pages_written`` count *file* I/O;
``cache.page_hits`` / ``cache.page_misses`` / ``cache.page_evictions``
account for the cache in front of it), so a query against a stored
database accounts for every page it touches.
"""

from __future__ import annotations

import os
import struct
import zlib
from collections import OrderedDict

from ..errors import CorruptPageError, StorageError
from ..telemetry.collector import count as _telemetry_count

DEFAULT_PAGE_SIZE = 4096
#: default page-cache capacity in pages (1 MiB at the default page size)
DEFAULT_CACHE_PAGES = 256
_MAGIC = b"APXQPG01"
_HEADER_FMT = "<8sIIQ"  # magic, page_size, page_count, free_list_head
_HEADER_SIZE = struct.calcsize(_HEADER_FMT)
_PAGE_PREFIX_FMT = "<I"  # crc32 of the payload
_PAGE_PREFIX_SIZE = struct.calcsize(_PAGE_PREFIX_FMT)
_FREE_LINK_FMT = "<Q"
_FREE_LINK_SIZE = struct.calcsize(_FREE_LINK_FMT)
_NO_PAGE = 0  # page 0 is the header, so 0 doubles as "null"


class Pager:
    """Fixed-size page manager over a single file.

    Parameters
    ----------
    path:
        File to open or create.
    page_size:
        Size of each page in bytes (only consulted when creating a new
        file; an existing file dictates its own page size).
    cache_pages:
        Capacity of the LRU page cache in pages; ``0`` disables caching.
    """

    def __init__(
        self,
        path: str,
        page_size: int = DEFAULT_PAGE_SIZE,
        cache_pages: int = DEFAULT_CACHE_PAGES,
    ) -> None:
        if page_size < 128:
            raise StorageError(f"page size {page_size} too small (min 128)")
        if cache_pages < 0:
            raise StorageError(f"cache_pages must be >= 0, got {cache_pages}")
        self.path = path
        self._closed = False
        self._cache: "OrderedDict[int, bytes]" = OrderedDict()
        self._cache_capacity = cache_pages
        exists = os.path.exists(path) and os.path.getsize(path) > 0
        self._file = open(path, "r+b" if exists else "w+b")
        if exists:
            self._read_header()
        else:
            self.page_size = page_size
            self.page_count = 1  # the header page
            self._free_list_head = _NO_PAGE
            self._write_header()

    # ------------------------------------------------------------------
    # header management
    # ------------------------------------------------------------------

    def _read_header(self) -> None:
        self._file.seek(0)
        raw = self._file.read(_HEADER_SIZE)
        if len(raw) < _HEADER_SIZE:
            raise CorruptPageError(f"{self.path}: truncated header")
        magic, page_size, page_count, free_head = struct.unpack(_HEADER_FMT, raw)
        if magic != _MAGIC:
            raise CorruptPageError(f"{self.path}: bad magic {magic!r}")
        self.page_size = page_size
        self.page_count = page_count
        self._free_list_head = free_head

    def _write_header(self) -> None:
        self._file.seek(0)
        self._file.write(
            struct.pack(
                _HEADER_FMT, _MAGIC, self.page_size, self.page_count, self._free_list_head
            )
        )

    # ------------------------------------------------------------------
    # page allocation
    # ------------------------------------------------------------------

    @property
    def payload_size(self) -> int:
        """Number of usable bytes per page (page size minus checksum)."""
        return self.page_size - _PAGE_PREFIX_SIZE

    def allocate(self) -> int:
        """Return the number of a fresh (or recycled) page.

        Allocation is pure bookkeeping: growing the file updates only the
        in-memory page count (the header is persisted on :meth:`sync` /
        :meth:`close`), and the page's contents are undefined until its
        first :meth:`write` — callers always write an allocated page
        before reading it.  This keeps bulk-load-style allocation storms
        at one page write per page instead of three.
        """
        self._check_open()
        if self._free_list_head != _NO_PAGE:
            page_no = self._free_list_head
            payload = self.read(page_no)
            (next_free,) = struct.unpack_from(_FREE_LINK_FMT, payload, 0)
            self._free_list_head = next_free
            return page_no
        page_no = self.page_count
        self.page_count += 1
        return page_no

    def free(self, page_no: int) -> None:
        """Return ``page_no`` to the free list for reuse.

        Like :meth:`allocate`, the header update is deferred to
        :meth:`sync` / :meth:`close`; only the free-list link is written.
        """
        self._check_open()
        self._validate_page_no(page_no)
        link = struct.pack(_FREE_LINK_FMT, self._free_list_head)
        self.write(page_no, link)
        self._free_list_head = page_no

    # ------------------------------------------------------------------
    # page IO
    # ------------------------------------------------------------------

    def read(self, page_no: int) -> bytes:
        """Return the payload of ``page_no`` — from the page cache when
        resident, otherwise read from the file and CRC-verified."""
        self._check_open()
        self._validate_page_no(page_no)
        cache = self._cache
        cached = cache.get(page_no)
        if cached is not None:
            cache.move_to_end(page_no)
            _telemetry_count("cache.page_hits")
            return cached
        if self._cache_capacity:
            _telemetry_count("cache.page_misses")
        _telemetry_count("storage.pages_read")
        self._file.seek(page_no * self.page_size)
        raw = self._file.read(self.page_size)
        if len(raw) < _PAGE_PREFIX_SIZE:
            raise CorruptPageError(f"{self.path}: short read on page {page_no}")
        (stored_crc,) = struct.unpack_from(_PAGE_PREFIX_FMT, raw, 0)
        payload = raw[_PAGE_PREFIX_SIZE : self.page_size]
        if zlib.crc32(payload) != stored_crc:
            raise CorruptPageError(f"{self.path}: checksum mismatch on page {page_no}")
        self._cache_store(page_no, payload)
        return payload

    def write(self, page_no: int, payload: bytes) -> None:
        """Write ``payload`` (padded with zeros) to ``page_no``.

        Write-through: the file is always written, and a cached copy of
        the page is refreshed so subsequent reads stay coherent.
        """
        self._check_open()
        if page_no <= 0 or page_no > self.page_count:
            raise StorageError(f"page {page_no} out of range (count {self.page_count})")
        if len(payload) > self.payload_size:
            raise StorageError(
                f"payload of {len(payload)} bytes exceeds page capacity {self.payload_size}"
            )
        _telemetry_count("storage.pages_written")
        padded = payload.ljust(self.payload_size, b"\x00")
        crc = zlib.crc32(padded)
        self._file.seek(page_no * self.page_size)
        self._file.write(struct.pack(_PAGE_PREFIX_FMT, crc) + padded)
        self._cache_store(page_no, padded)

    def _cache_store(self, page_no: int, payload: bytes) -> None:
        capacity = self._cache_capacity
        if not capacity:
            return
        cache = self._cache
        cache[page_no] = payload
        cache.move_to_end(page_no)
        if len(cache) > capacity:
            cache.popitem(last=False)
            _telemetry_count("cache.page_evictions")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def sync(self) -> None:
        """Flush buffered writes and the header to the OS."""
        self._check_open()
        self._write_header()
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if self._closed:
            return
        self._write_header()
        self._file.flush()
        self._file.close()
        self._cache.clear()
        self._closed = True

    def __enter__(self) -> "Pager":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError(f"{self.path}: pager is closed")

    def _validate_page_no(self, page_no: int) -> None:
        if page_no <= 0 or page_no >= self.page_count:
            raise StorageError(f"page {page_no} out of range (count {self.page_count})")
