"""An on-disk B+tree mapping byte keys to byte values.

This is the index structure behind the persistent key-value store that
replaces Berkeley DB in our reproduction.  Design points:

* **Leaf chaining** — leaves form a singly linked list so range scans (used
  for prefix lookups over the secondary index ``I_sec``) stream in key
  order without touching inner nodes.
* **Overflow chains** — posting lists easily exceed one page, so values
  larger than an inline threshold are stored in a chain of overflow pages
  and the leaf keeps only ``(total_length, first_page)``.
* **Size-based splits** — nodes are serialized after each mutation; a node
  that no longer fits its page is split at the median key.  Deletions
  remove entries without rebalancing (underfull nodes are legal), which
  keeps the code small and is sufficient for the read-mostly index
  workloads of the paper.
"""

from __future__ import annotations

import struct
from collections.abc import Iterator

from ..errors import CorruptPageError, KeyNotFoundError, StorageError
from ..telemetry.collector import count as _telemetry_count
from .pager import Pager
from .varint import decode_uvarint, encode_uvarint

_LEAF = 1
_INTERNAL = 0
_INLINE_VALUE = 0
_OVERFLOW_VALUE = 1
_NO_PAGE = 0
_META_KEY_ROOT = 1

# Fraction of the page payload a single inline value may occupy before it
# is pushed to overflow pages.  Keeping this below ~1/4 guarantees a leaf
# can always hold at least a couple of entries, so splits terminate.
_INLINE_FRACTION = 4

# Decoded nodes kept by the LRU node cache.  Point lookups and updates
# re-walk the same root-to-leaf paths over and over (a document mutation
# rewrites hundreds of adjacent index keys), and deserializing a node is
# far costlier than reading its page from the pager's cache.
_NODE_CACHE_SIZE = 128


class _Node:
    """In-memory image of one B+tree page."""

    __slots__ = ("page_no", "is_leaf", "keys", "values", "children", "next_leaf")

    def __init__(self, page_no: int, is_leaf: bool) -> None:
        self.page_no = page_no
        self.is_leaf = is_leaf
        self.keys: list[bytes] = []
        # leaf: parallel to keys; each value is (tag, payload) where payload
        # is bytes for inline values and (total_len, first_page) otherwise.
        self.values: list[tuple[int, object]] = []
        # internal: len(children) == len(keys) + 1
        self.children: list[int] = []
        self.next_leaf = _NO_PAGE


class BTree:
    """B+tree over a :class:`~repro.storage.pager.Pager`.

    The tree persists its root page number inside a tiny metadata page so
    reopening the file restores the index.
    """

    def __init__(
        self,
        pager: Pager,
        meta_page: int | None = None,
        node_cache_size: int | None = None,
    ) -> None:
        self._pager = pager
        self._inline_limit = pager.payload_size // _INLINE_FRACTION
        # decoded-node LRU: page number -> the live _Node image.  Writers
        # mutate these objects in place and every successful node write
        # re-registers them, so the cache always mirrors the tree the
        # current process sees.  Scans bypass it (they iterate private
        # copies so an interleaved put cannot disturb a running cursor).
        # Size 0 disables it, keeping every page read visible to the
        # pager's I/O accounting.
        self._node_cache_size = (
            _NODE_CACHE_SIZE if node_cache_size is None else node_cache_size
        )
        self._node_cache: dict[int, _Node] = {}
        if meta_page is None:
            self._meta_page = self._allocate()
            root = _Node(self._allocate(), is_leaf=True)
            self._write_node(root)
            self._root_page = root.page_no
            self._write_meta()
        else:
            self._meta_page = meta_page
            self._read_meta()

    @property
    def meta_page(self) -> int:
        """Page number to pass back to reopen this tree."""
        return self._meta_page

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def get(self, key: bytes) -> bytes:
        """Return the value stored under ``key``.

        Raises :class:`~repro.errors.KeyNotFoundError` if absent.
        """
        node = self._read_node(self._root_page)
        while not node.is_leaf:
            node = self._read_node(node.children[self._child_index(node, key)])
        index = self._leaf_index(node, key)
        if index is None:
            raise KeyNotFoundError(key)
        return self._load_value(node.values[index])

    def contains(self, key: bytes) -> bool:
        """Return whether ``key`` is present."""
        try:
            self.get(key)
        except KeyNotFoundError:
            return False
        return True

    def put(self, key: bytes, value: bytes) -> None:
        """Insert ``key`` -> ``value``, replacing any previous value.

        Keys are limited to an eighth of the page payload so that any
        two entries always fit one page after a split.
        """
        if not isinstance(key, bytes) or not isinstance(value, bytes):
            raise StorageError("BTree keys and values must be bytes")
        if len(key) > self._pager.payload_size // 8:
            raise StorageError(
                f"key of {len(key)} bytes exceeds the maximum of "
                f"{self._pager.payload_size // 8} for this page size"
            )
        split = self._insert(self._root_page, key, value)
        if split is not None:
            middle_key, right_page = split
            new_root = _Node(self._allocate(), is_leaf=False)
            new_root.keys = [middle_key]
            new_root.children = [self._root_page, right_page]
            self._write_node(new_root)
            self._root_page = new_root.page_no
            self._write_meta()

    def bulk_load(self, pairs: "list[tuple[bytes, bytes]]", fill: float = 0.9) -> None:
        """Build the tree bottom-up from sorted unique (key, value) pairs.

        Orders of magnitude faster than repeated :meth:`put` — leaves are
        packed left to right (to ``fill`` of the page, leaving slack for
        later updates), then each internal level is packed over the one
        below.  Only valid on an empty tree.
        """
        if next(self.scan(), None) is not None:
            raise StorageError("bulk_load requires an empty tree")
        if not 0.1 <= fill <= 1.0:
            raise StorageError(f"fill factor {fill} outside [0.1, 1.0]")
        for (left_key, _), (right_key, _) in zip(pairs, pairs[1:]):
            if left_key >= right_key:
                raise StorageError("bulk_load needs strictly ascending unique keys")
        if not pairs:
            return
        budget = int(self._pager.payload_size * fill)

        # ---- leaf level ------------------------------------------------
        leaves: list[tuple[bytes, _Node]] = []  # (first key, node)
        current = _Node(self._allocate(), is_leaf=True)
        current_size = 10  # header: type byte + count varint + next link
        for key, value in pairs:
            if not isinstance(key, bytes) or not isinstance(value, bytes):
                raise StorageError("BTree keys and values must be bytes")
            if len(key) > self._pager.payload_size // 8:
                raise StorageError(f"key of {len(key)} bytes exceeds the maximum")
            stored = self._store_value(value)
            entry_size = len(key) + 5 + self._stored_value_size(stored)
            if current.keys and current_size + entry_size > budget:
                leaves.append((current.keys[0], current))
                fresh = _Node(self._allocate(), is_leaf=True)
                current.next_leaf = fresh.page_no
                self._write_node(current)
                current = fresh
                current_size = 10
            current.keys.append(key)
            current.values.append(stored)
            current_size += entry_size
        leaves.append((current.keys[0], current))
        self._write_node(current)

        # ---- internal levels -------------------------------------------
        # level entries are (smallest key in subtree, node); the smallest
        # key of a sibling becomes the separator inside (or between)
        # parents one level up
        level = leaves
        while len(level) > 1:
            parents: list[tuple[bytes, _Node]] = []
            parent = _Node(self._allocate(), is_leaf=False)
            parent.children.append(level[0][1].page_no)
            parent_min = level[0][0]
            parent_size = 20
            for min_key, child in level[1:]:
                entry_size = len(min_key) + 5 + 8
                if parent.keys and parent_size + entry_size > budget:
                    parents.append((parent_min, parent))
                    self._write_node(parent)
                    parent = _Node(self._allocate(), is_leaf=False)
                    parent.children.append(child.page_no)
                    parent_min = min_key
                    parent_size = 20
                    continue
                parent.keys.append(min_key)
                parent.children.append(child.page_no)
                parent_size += entry_size
            parents.append((parent_min, parent))
            self._write_node(parent)
            level = parents
        self._pager.free(self._root_page)  # the empty pre-bulk root leaf
        self._node_cache.pop(self._root_page, None)
        self._root_page = level[0][1].page_no
        self._write_meta()

    def delete(self, key: bytes) -> None:
        """Remove ``key``; raises :class:`KeyNotFoundError` if absent."""
        node = self._read_node(self._root_page)
        while not node.is_leaf:
            node = self._read_node(node.children[self._child_index(node, key)])
        index = self._leaf_index(node, key)
        if index is None:
            raise KeyNotFoundError(key)
        self._free_value(node.values[index])
        del node.keys[index]
        del node.values[index]
        self._write_node(node)

    def scan(
        self, start: bytes = b"", end: bytes | None = None
    ) -> Iterator[tuple[bytes, bytes]]:
        """Yield ``(key, value)`` pairs with ``start <= key < end`` in order."""
        node = self._read_node_copy(self._root_page)
        while not node.is_leaf:
            node = self._read_node_copy(node.children[self._child_index(node, start)])
        while True:
            for index, key in enumerate(node.keys):
                if key < start:
                    continue
                if end is not None and key >= end:
                    return
                yield key, self._load_value(node.values[index])
            if node.next_leaf == _NO_PAGE:
                return
            node = self._read_node_copy(node.next_leaf)

    def scan_prefix(self, prefix: bytes) -> Iterator[tuple[bytes, bytes]]:
        """Yield all pairs whose key starts with ``prefix``."""
        for key, value in self.scan(start=prefix):
            if not key.startswith(prefix):
                return
            yield key, value

    def keys(self) -> Iterator[bytes]:
        """Yield every key in order."""
        for key, _ in self.scan():
            yield key

    def __len__(self) -> int:
        return sum(1 for _ in self.scan())

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------

    def _insert(
        self, page_no: int, key: bytes, value: bytes
    ) -> tuple[bytes, int] | None:
        """Insert into the subtree at ``page_no``.

        Returns ``(separator_key, new_right_page)`` when the node split,
        otherwise ``None``.
        """
        node = self._read_node(page_no)
        if node.is_leaf:
            index = self._leaf_index(node, key)
            if index is not None:
                self._free_value(node.values[index])
                node.values[index] = self._store_value(value)
            else:
                position = self._insert_position(node.keys, key)
                node.keys.insert(position, key)
                node.values.insert(position, self._store_value(value))
        else:
            child_index = self._child_index(node, key)
            split = self._insert(node.children[child_index], key, value)
            if split is None:
                return None
            middle_key, right_page = split
            node.keys.insert(child_index, middle_key)
            node.children.insert(child_index + 1, right_page)
        return self._write_or_split(node)

    def _write_or_split(self, node: _Node) -> tuple[bytes, int] | None:
        serialized = self._serialize(node)
        if len(serialized) <= self._pager.payload_size:
            self._pager.write(node.page_no, serialized)
            self._cache_node(node)
            return None
        return self._split(node)

    def _split(self, node: _Node) -> tuple[bytes, int]:
        middle = self._split_point(node)
        right = _Node(self._allocate(), node.is_leaf)
        if node.is_leaf:
            right.keys = node.keys[middle:]
            right.values = node.values[middle:]
            right.next_leaf = node.next_leaf
            node.keys = node.keys[:middle]
            node.values = node.values[:middle]
            node.next_leaf = right.page_no
            separator = right.keys[0]
        else:
            separator = node.keys[middle]
            right.keys = node.keys[middle + 1 :]
            right.children = node.children[middle + 1 :]
            node.keys = node.keys[:middle]
            node.children = node.children[: middle + 1]
        self._write_node(node)
        self._write_node(right)
        return separator, right.page_no

    def _split_point(self, node: _Node) -> int:
        """Split index balancing *serialized bytes*, not entry counts —
        a count-median split can leave a byte-heavy half still oversized
        when entry sizes vary (e.g. one big inline value among small
        ones).  Inline values are capped at a quarter page and keys at an
        eighth, so the byte-balanced split always yields two fitting
        halves."""
        if len(node.keys) < 2:
            raise StorageError("page too small to hold two entries; raise page_size")
        if node.is_leaf:
            sizes = [
                len(key) + self._stored_value_size(value)
                for key, value in zip(node.keys, node.values)
            ]
        else:
            sizes = [len(key) + 8 for key in node.keys]
        total = sum(sizes)
        accumulated = 0
        for index in range(len(sizes) - 1):
            accumulated += sizes[index]
            if accumulated * 2 >= total:
                return index + 1
        return len(sizes) - 1

    @staticmethod
    def _stored_value_size(stored: tuple[int, object]) -> int:
        tag, payload = stored
        if tag == _INLINE_VALUE:
            assert isinstance(payload, bytes)
            return len(payload) + 3
        return 18

    # ------------------------------------------------------------------
    # value storage (inline vs. overflow chain)
    # ------------------------------------------------------------------

    def _store_value(self, value: bytes) -> tuple[int, object]:
        if len(value) <= self._inline_limit:
            return (_INLINE_VALUE, value)
        chunk_size = self._pager.payload_size - 8  # room for the next-page link
        first_page = _NO_PAGE
        previous_payloads: list[tuple[int, bytes]] = []
        offset = 0
        pages: list[int] = []
        while offset < len(value):
            pages.append(self._allocate())
            offset += chunk_size
        offset = 0
        for index, page_no in enumerate(pages):
            next_page = pages[index + 1] if index + 1 < len(pages) else _NO_PAGE
            chunk = value[offset : offset + chunk_size]
            previous_payloads.append((page_no, struct.pack("<Q", next_page) + chunk))
            offset += chunk_size
        for page_no, payload in previous_payloads:
            self._pager.write(page_no, payload)
        first_page = pages[0] if pages else _NO_PAGE
        return (_OVERFLOW_VALUE, (len(value), first_page))

    def _load_value(self, stored: tuple[int, object]) -> bytes:
        tag, payload = stored
        if tag == _INLINE_VALUE:
            assert isinstance(payload, bytes)
            return payload
        _telemetry_count("btree.overflow_values_read")
        total_len, page_no = payload  # type: ignore[misc]
        chunks = []
        remaining = total_len
        chunk_size = self._pager.payload_size - 8
        while page_no != _NO_PAGE and remaining > 0:
            raw = self._pager.read(page_no)
            (page_no,) = struct.unpack_from("<Q", raw, 0)
            take = min(remaining, chunk_size)
            chunks.append(raw[8 : 8 + take])
            remaining -= take
        value = b"".join(chunks)
        if len(value) != total_len:
            raise CorruptPageError("overflow chain shorter than recorded length")
        return value

    def _free_value(self, stored: tuple[int, object]) -> None:
        tag, payload = stored
        if tag == _INLINE_VALUE:
            return
        total_len, page_no = payload  # type: ignore[misc]
        remaining = total_len
        chunk_size = self._pager.payload_size - 8
        while page_no != _NO_PAGE and remaining > 0:
            raw = self._pager.read(page_no)
            next_page = struct.unpack_from("<Q", raw, 0)[0]
            self._pager.free(page_no)
            page_no = next_page
            remaining -= chunk_size

    # ------------------------------------------------------------------
    # node serialization
    # ------------------------------------------------------------------

    def _serialize(self, node: _Node) -> bytes:
        out = bytearray()
        out.append(_LEAF if node.is_leaf else _INTERNAL)
        encode_uvarint(len(node.keys), out)
        if node.is_leaf:
            out += struct.pack("<Q", node.next_leaf)
            for key, (tag, payload) in zip(node.keys, node.values):
                encode_uvarint(len(key), out)
                out += key
                out.append(tag)
                if tag == _INLINE_VALUE:
                    assert isinstance(payload, bytes)
                    encode_uvarint(len(payload), out)
                    out += payload
                else:
                    total_len, first_page = payload  # type: ignore[misc]
                    encode_uvarint(total_len, out)
                    out += struct.pack("<Q", first_page)
        else:
            for child in node.children:
                out += struct.pack("<Q", child)
            for key in node.keys:
                encode_uvarint(len(key), out)
                out += key
        return bytes(out)

    def _deserialize(self, page_no: int, data: bytes) -> _Node:
        if not data:
            raise CorruptPageError(f"empty B+tree page {page_no}")
        is_leaf = data[0] == _LEAF
        node = _Node(page_no, is_leaf)
        count, pos = decode_uvarint(data, 1)
        if is_leaf:
            (node.next_leaf,) = struct.unpack_from("<Q", data, pos)
            pos += 8
            for _ in range(count):
                key_len, pos = decode_uvarint(data, pos)
                key = data[pos : pos + key_len]
                pos += key_len
                tag = data[pos]
                pos += 1
                if tag == _INLINE_VALUE:
                    value_len, pos = decode_uvarint(data, pos)
                    value: tuple[int, object] = (tag, data[pos : pos + value_len])
                    pos += value_len
                else:
                    total_len, pos = decode_uvarint(data, pos)
                    (first_page,) = struct.unpack_from("<Q", data, pos)
                    pos += 8
                    value = (tag, (total_len, first_page))
                node.keys.append(key)
                node.values.append(value)
        else:
            for _ in range(count + 1):
                (child,) = struct.unpack_from("<Q", data, pos)
                pos += 8
                node.children.append(child)
            for _ in range(count):
                key_len, pos = decode_uvarint(data, pos)
                node.keys.append(data[pos : pos + key_len])
                pos += key_len
        return node

    def _allocate(self) -> int:
        """Allocate a page, dropping any decoded node cached for a prior
        life of that page number (the pager recycles freed pages)."""
        page_no = self._pager.allocate()
        self._node_cache.pop(page_no, None)
        return page_no

    def _cache_node(self, node: _Node) -> None:
        if self._node_cache_size == 0:
            return
        cache = self._node_cache
        cache.pop(node.page_no, None)
        cache[node.page_no] = node
        if len(cache) > self._node_cache_size:
            cache.pop(next(iter(cache)))

    def _read_node(self, page_no: int) -> _Node:
        _telemetry_count("btree.node_visits")
        node = self._node_cache.get(page_no)
        if node is not None:
            _telemetry_count("btree.node_cache_hits")
            self._cache_node(node)  # refresh LRU position
            return node
        node = self._deserialize(page_no, self._pager.read(page_no))
        self._cache_node(node)
        return node

    def _read_node_copy(self, page_no: int) -> _Node:
        """A private decoded image for cursors: scans iterate node lists
        while callers may interleave puts, so they must never alias the
        cached (writer-mutated) objects."""
        _telemetry_count("btree.node_visits")
        return self._deserialize(page_no, self._pager.read(page_no))

    def _write_node(self, node: _Node) -> None:
        data = self._serialize(node)
        if len(data) > self._pager.payload_size:
            raise StorageError("internal error: writing oversized node without split")
        self._pager.write(node.page_no, data)
        self._cache_node(node)

    # ------------------------------------------------------------------
    # metadata
    # ------------------------------------------------------------------

    def _write_meta(self) -> None:
        self._pager.write(self._meta_page, struct.pack("<BQ", _META_KEY_ROOT, self._root_page))

    def _read_meta(self) -> None:
        raw = self._pager.read(self._meta_page)
        tag, root = struct.unpack_from("<BQ", raw, 0)
        if tag != _META_KEY_ROOT:
            raise CorruptPageError("bad B+tree metadata page")
        self._root_page = root

    # ------------------------------------------------------------------
    # search helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _insert_position(keys: list[bytes], key: bytes) -> int:
        low, high = 0, len(keys)
        while low < high:
            mid = (low + high) // 2
            if keys[mid] < key:
                low = mid + 1
            else:
                high = mid
        return low

    @classmethod
    def _child_index(cls, node: _Node, key: bytes) -> int:
        """Index of the child subtree that may contain ``key``."""
        low, high = 0, len(node.keys)
        while low < high:
            mid = (low + high) // 2
            if node.keys[mid] <= key:
                low = mid + 1
            else:
                high = mid
        return low

    @classmethod
    def _leaf_index(cls, node: _Node, key: bytes) -> int | None:
        position = cls._insert_position(node.keys, key)
        if position < len(node.keys) and node.keys[position] == key:
            return position
        return None
