"""Embedded storage engine: the Berkeley-DB stand-in of the reproduction.

Public surface:

* :class:`~repro.storage.kv.Store` / :class:`MemoryStore` /
  :class:`FileStore` / :class:`Namespace` — the ordered KV interface the
  indexes are built on.
* :class:`~repro.storage.btree.BTree` and
  :class:`~repro.storage.pager.Pager` — the on-disk machinery.
* posting codecs in :mod:`repro.storage.postings`.
"""

from .btree import BTree
from .kv import FileStore, MemoryStore, Namespace, Store
from .pager import DEFAULT_PAGE_SIZE, Pager
from .postings import (
    decode_instance_postings,
    decode_node_postings,
    encode_instance_postings,
    encode_node_postings,
)
from .varint import (
    decode_delta_list,
    decode_svarint,
    decode_uvarint,
    encode_delta_list,
    encode_svarint,
    encode_uvarint,
)

__all__ = [
    "BTree",
    "DEFAULT_PAGE_SIZE",
    "FileStore",
    "MemoryStore",
    "Namespace",
    "Pager",
    "Store",
    "decode_delta_list",
    "decode_instance_postings",
    "decode_node_postings",
    "decode_svarint",
    "decode_uvarint",
    "encode_delta_list",
    "encode_instance_postings",
    "encode_node_postings",
    "encode_svarint",
    "encode_uvarint",
]
