"""Embedded storage engine: the Berkeley-DB stand-in of the reproduction.

Public surface:

* :class:`~repro.storage.kv.Store` / :class:`MemoryStore` /
  :class:`FileStore` / :class:`Namespace` — the ordered KV interface the
  indexes are built on.
* :class:`~repro.storage.btree.BTree` and
  :class:`~repro.storage.pager.Pager` — the on-disk machinery.
* posting codecs in :mod:`repro.storage.postings`.
* durability: the write-ahead log in :mod:`repro.storage.wal`
  (``durability="wal"`` on the pager / store / database), offline
  checking in :mod:`repro.storage.verify`, and the fault-injection
  harness in :mod:`repro.storage.faults`.
"""

from .btree import BTree
from .faults import FaultInjector, FaultyFile, SimulatedCrash
from .kv import FileStore, MemoryStore, Namespace, Store
from .overlay import SnapshotOverlay, current_overlay, using_overlay
from .pager import DEFAULT_PAGE_SIZE, DURABILITY_MODES, Pager
from .verify import VerifyReport, verify_store
from .wal import DEFAULT_CHECKPOINT_BYTES, WAL_SUFFIX, WriteAheadLog, recover
from .postings import (
    decode_instance_postings,
    decode_node_postings,
    encode_instance_postings,
    encode_node_postings,
)
from .varint import (
    decode_delta_list,
    decode_svarint,
    decode_uvarint,
    encode_delta_list,
    encode_svarint,
    encode_uvarint,
)

__all__ = [
    "BTree",
    "DEFAULT_CHECKPOINT_BYTES",
    "DEFAULT_PAGE_SIZE",
    "DURABILITY_MODES",
    "FaultInjector",
    "FaultyFile",
    "FileStore",
    "MemoryStore",
    "Namespace",
    "Pager",
    "SimulatedCrash",
    "SnapshotOverlay",
    "Store",
    "VerifyReport",
    "WAL_SUFFIX",
    "WriteAheadLog",
    "decode_delta_list",
    "decode_instance_postings",
    "decode_node_postings",
    "decode_svarint",
    "decode_uvarint",
    "encode_delta_list",
    "encode_instance_postings",
    "encode_node_postings",
    "encode_svarint",
    "encode_uvarint",
    "current_overlay",
    "recover",
    "using_overlay",
    "verify_store",
]
