"""Key-value store façade over the B+tree (the Berkeley-DB stand-in).

The paper's system is "implemented in C++ on top of the Berkeley DB"; the
algorithms only ever *fetch a posting by key* and *scan keys in order*.
This module provides exactly that contract behind a small interface with
two interchangeable backends:

* :class:`MemoryStore` — a sorted-dict store for tests and benchmarks that
  should not measure disk overheads.
* :class:`FileStore` — a persistent store backed by the pager and B+tree.

Logical namespaces (one per index: ``I_struct``, ``I_text``, ``I_sec``,
node table, ...) share one store through :class:`Namespace`, which prefixes
keys with a table tag.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterator

from ..errors import KeyNotFoundError, StorageError
from .btree import BTree
from .cache import CountedLock
from .pager import DEFAULT_CACHE_PAGES, DEFAULT_PAGE_SIZE, Pager


class Store:
    """Abstract ordered key-value store.

    Every store carries a **generation** counter that advances on any
    mutation (``put`` / ``delete`` / ``bulk_load``).  Read-side caches —
    the decoded-posting cache above all — tag their entries with the
    generation they observed and treat a changed generation as a blanket
    invalidation, so a write anywhere in the store can never serve stale
    decoded data.

    Concrete stores are **thread-safe**: every operation (including the
    mutation *together with* its generation bump) runs under one
    store-wide lock, so a reader can never observe a half-applied write
    or a generation that disagrees with the bytes it just read.  Readers
    that cache decoded values must snapshot ``generation`` *before* the
    ``get`` and tag the cache entry with that snapshot — a write racing
    the read then at worst wastes one cache entry, never serves a stale
    one.
    """

    #: mutation counter; subclasses bump it on every write
    generation: int = 0

    def get(self, key: bytes) -> bytes:
        """Return the value under ``key``; raises KeyNotFoundError."""
        raise NotImplementedError

    def put(self, key: bytes, value: bytes) -> None:
        """Insert or replace ``key`` -> ``value``."""
        raise NotImplementedError

    def delete(self, key: bytes) -> None:
        """Remove ``key``; raises KeyNotFoundError when absent."""
        raise NotImplementedError

    def contains(self, key: bytes) -> bool:
        """Whether ``key`` is present."""
        try:
            self.get(key)
        except KeyNotFoundError:
            return False
        return True

    def scan(self, start: bytes = b"", end: bytes | None = None) -> Iterator[tuple[bytes, bytes]]:
        """Yield (key, value) pairs with ``start <= key < end`` in order."""
        raise NotImplementedError

    def scan_prefix(self, prefix: bytes) -> Iterator[tuple[bytes, bytes]]:
        """Yield all pairs whose key starts with ``prefix``."""
        for key, value in self.scan(start=prefix):
            if not key.startswith(prefix):
                return
            yield key, value

    def bulk_load(self, pairs: list[tuple[bytes, bytes]]) -> None:
        """Load sorted unique pairs into an empty store (fast path for
        index construction; the default falls back to puts)."""
        for key, value in pairs:
            self.put(key, value)

    def sync(self) -> None:
        """Flush pending writes (no-op for memory stores)."""

    def close(self) -> None:
        """Release resources (no-op for memory stores)."""

    def __enter__(self) -> "Store":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class MemoryStore(Store):
    """In-memory ordered store (sorted key list + dict).

    Single dict reads are already atomic under the interpreter, so
    ``get`` / ``contains`` stay lock-free; the lock covers the compound
    operations — a ``put``/``delete`` touches the dict, the sorted key
    list, *and* the generation, and ``scan`` snapshots a consistent
    (keys, values) view.
    """

    def __init__(self) -> None:
        self._data: dict[bytes, bytes] = {}
        self._sorted_keys: list[bytes] = []
        self._lock = CountedLock("concurrency.store_lock_waits")
        self.generation = 0

    def get(self, key: bytes) -> bytes:
        try:
            return self._data[key]
        except KeyError:
            raise KeyNotFoundError(key) from None

    def put(self, key: bytes, value: bytes) -> None:
        if not isinstance(key, bytes) or not isinstance(value, bytes):
            raise StorageError("store keys and values must be bytes")
        with self._lock:
            if key not in self._data:
                bisect.insort(self._sorted_keys, key)
            self._data[key] = value
            self.generation += 1

    def delete(self, key: bytes) -> None:
        with self._lock:
            if key not in self._data:
                raise KeyNotFoundError(key)
            del self._data[key]
            index = bisect.bisect_left(self._sorted_keys, key)
            del self._sorted_keys[index]
            self.generation += 1

    def contains(self, key: bytes) -> bool:
        return key in self._data

    def scan(self, start: bytes = b"", end: bytes | None = None) -> Iterator[tuple[bytes, bytes]]:
        with self._lock:
            index = bisect.bisect_left(self._sorted_keys, start)
            # Snapshot a consistent view so mutation during iteration can
            # neither skip keys nor pair a key with a missing value.
            pairs = [(key, self._data[key]) for key in self._sorted_keys[index:]]
        for key, value in pairs:
            if end is not None and key >= end:
                return
            yield key, value

    def __len__(self) -> int:
        return len(self._data)


class FileStore(Store):
    """Persistent store backed by :class:`Pager` + :class:`BTree`.

    ``cache_pages`` sizes the pager's LRU page cache (0 disables it);
    ``durability`` selects the crash story (``"none"`` or ``"wal"`` —
    see :class:`~repro.storage.pager.Pager`); ``wal_checkpoint_bytes``,
    ``opener``, and ``must_exist`` pass straight through to the pager.
    """

    def __init__(
        self,
        path: str,
        page_size: int = DEFAULT_PAGE_SIZE,
        cache_pages: int = DEFAULT_CACHE_PAGES,
        durability: str = "none",
        wal_checkpoint_bytes: "int | None" = None,
        opener=None,
        must_exist: bool = False,
    ) -> None:
        pager_kwargs = {}
        if wal_checkpoint_bytes is not None:
            pager_kwargs["wal_checkpoint_bytes"] = wal_checkpoint_bytes
        self._pager = Pager(
            path,
            page_size=page_size,
            cache_pages=cache_pages,
            durability=durability,
            opener=opener,
            must_exist=must_exist,
            **pager_kwargs,
        )
        # Crash recovery replayed logged pages into the file: advance the
        # generation so any decoded-posting cache entry recorded against
        # an earlier open of this store is dropped, never served stale.
        self.generation = 1 if self._pager.recovered_frames else 0
        # A fresh pager has only the header page; the B+tree then allocates
        # its meta page as page 1.  An existing file reopens from page 1.
        # cache_pages=0 also disables the B+tree's decoded-node cache, so
        # "caches off" keeps every page read visible to the I/O counters.
        node_cache_size = 0 if cache_pages == 0 else None
        if self._pager.page_count == 1:
            self._tree = BTree(self._pager, node_cache_size=node_cache_size)
        else:
            self._tree = BTree(
                self._pager, meta_page=1, node_cache_size=node_cache_size
            )
        # One coarse lock over the B+tree: a tree operation touches many
        # pages (splits, sibling links), so per-page locking in the pager
        # cannot make a *tree* operation atomic.  Reentrant because
        # commit/checkpoint/close nest through each other.
        self._lock = CountedLock("concurrency.store_lock_waits", reentrant=True)

    @property
    def durability(self) -> str:
        """The pager's durability mode (``"none"`` or ``"wal"``)."""
        return self._pager.durability

    def commit(self) -> None:
        """Make every write since the last commit atomically durable
        (the WAL commit point; plain :meth:`sync` in ``"none"`` mode)."""
        with self._lock:
            self._pager.commit()

    def checkpoint(self) -> None:
        """Commit, then fold the write-ahead log into the main file."""
        with self._lock:
            self._pager.checkpoint()

    def get(self, key: bytes) -> bytes:
        with self._lock:
            return self._tree.get(key)

    def put(self, key: bytes, value: bytes) -> None:
        with self._lock:
            self._tree.put(key, value)
            self.generation += 1

    def delete(self, key: bytes) -> None:
        with self._lock:
            self._tree.delete(key)
            self.generation += 1

    def contains(self, key: bytes) -> bool:
        with self._lock:
            return self._tree.contains(key)

    def scan(self, start: bytes = b"", end: bytes | None = None) -> Iterator[tuple[bytes, bytes]]:
        # Materialize under the lock: a B+tree cursor walks sibling links
        # that a concurrent split rewires, so lazily yielding pairs while
        # writers run would read pages mid-reorganization.
        with self._lock:
            return iter(list(self._tree.scan(start=start, end=end)))

    def bulk_load(self, pairs: list[tuple[bytes, bytes]]) -> None:
        with self._lock:
            self._tree.bulk_load(pairs)
            self.generation += 1

    def sync(self) -> None:
        with self._lock:
            self._pager.sync()

    def close(self) -> None:
        with self._lock:
            self._pager.close()


class Namespace(Store):
    """A logical table inside a shared store, realized by key prefixing."""

    def __init__(self, store: Store, tag: bytes) -> None:
        if b"\x00" in tag:
            raise StorageError("namespace tags must not contain NUL bytes")
        self._store = store
        self._prefix = tag + b"\x00"

    @property
    def generation(self) -> int:  # type: ignore[override]
        """The underlying store's mutation counter (namespaces share it)."""
        return self._store.generation

    def get(self, key: bytes) -> bytes:
        return self._store.get(self._prefix + key)

    def put(self, key: bytes, value: bytes) -> None:
        self._store.put(self._prefix + key, value)

    def delete(self, key: bytes) -> None:
        self._store.delete(self._prefix + key)

    def contains(self, key: bytes) -> bool:
        return self._store.contains(self._prefix + key)

    def scan(self, start: bytes = b"", end: bytes | None = None) -> Iterator[tuple[bytes, bytes]]:
        prefix_len = len(self._prefix)
        scan_end = None if end is None else self._prefix + end
        for key, value in self._store.scan(start=self._prefix + start, end=scan_end):
            if not key.startswith(self._prefix):
                return
            yield key[prefix_len:], value

    def sync(self) -> None:
        self._store.sync()
