"""Fault injection for the storage engine's file I/O.

The durability guarantees of the WAL (:mod:`repro.storage.wal`) are
claims about what survives a crash at an *arbitrary* I/O boundary — a
kill between two writes, in the middle of a write (a torn page), or
right before an fsync.  This module makes those boundaries drivable from
tests: a :class:`FaultyFile` wraps a real file object and a shared
:class:`FaultInjector` decides, per operation, whether it completes,
completes partially, or dies.

Faults on offer:

* **kill-after-N** — the first ``kill_after_ops`` *mutating* operations
  (write / flush / fsync / truncate) succeed, the next one raises
  :class:`SimulatedCrash` exactly once; every later operation on any
  file of the injector raises :class:`~repro.errors.StorageError`
  (the process is "dead", nothing more reaches disk).
* **torn writes** — when the killed operation is a write, only the first
  ``torn_write_bytes`` bytes of the buffer land in the file before the
  crash (default: half the buffer), modelling a power cut mid-page.
* **fsync failure** — ``fail_fsync=True`` makes every fsync raise
  ``OSError(EIO)`` without crashing the injector, modelling a dying
  disk whose error the engine must propagate, not swallow.
* **short reads** — ``short_read_bytes`` caps how many bytes any read
  returns, modelling a truncated file or a filesystem that returns
  partial data; the engine must turn this into a typed error, never a
  ``struct.error``.

The injector also runs in pure *counting* mode (no faults configured):
:attr:`FaultInjector.mutating_ops` then reports how many I/O boundaries
a workload has, which is exactly what the crash matrix
(``tools/crashmatrix.py``) needs to enumerate kill points.

Reads never count as kill boundaries: a crash during a read does not
change the bytes on disk, so killing there cannot create new states.
"""

from __future__ import annotations

import errno
import os
from typing import Callable

from ..errors import StorageError

#: operations that advance the kill counter (they can change disk state)
MUTATING_OPS = ("write", "flush", "fsync", "truncate")


class SimulatedCrash(Exception):
    """The injected process kill.

    Deliberately *not* a :class:`~repro.errors.ReproError`: the engine
    must never catch and recover from it in-process — only a harness
    that re-opens the store afterwards may handle it.
    """


class FaultInjector:
    """Shared fault policy for every file opened through :meth:`opener`.

    One injector models one process run: the operation counter and the
    crashed state are shared across the main database file and its WAL
    sidecar, so "kill at boundary k" means the k-th mutating operation
    *anywhere*, matching what a real ``kill -9`` does.

    Parameters
    ----------
    kill_after_ops:
        Number of mutating operations allowed to complete; the next one
        raises :class:`SimulatedCrash`.  ``None`` disables the kill
        (counting mode).
    torn_write_bytes:
        When the killed operation is a write, how many leading bytes
        still reach the file.  ``None`` tears at half the buffer.
    fail_fsync:
        Every fsync raises ``OSError(EIO)`` (no crash, no dead state).
    short_read_bytes:
        Cap on the byte count any single read returns; ``None`` reads
        normally.
    """

    def __init__(
        self,
        kill_after_ops: "int | None" = None,
        torn_write_bytes: "int | None" = None,
        fail_fsync: bool = False,
        short_read_bytes: "int | None" = None,
    ) -> None:
        if kill_after_ops is not None and kill_after_ops < 0:
            raise StorageError(f"kill_after_ops must be >= 0, got {kill_after_ops}")
        self.kill_after_ops = kill_after_ops
        self.torn_write_bytes = torn_write_bytes
        self.fail_fsync = fail_fsync
        self.short_read_bytes = short_read_bytes
        #: mutating operations that completed (or tore) so far
        self.mutating_ops = 0
        #: whether the simulated kill already fired
        self.crashed = False
        #: operation index the kill fired at (None until it does)
        self.crashed_at: "int | None" = None

    # ------------------------------------------------------------------
    # policy hooks called by FaultyFile
    # ------------------------------------------------------------------

    def _check_alive(self) -> None:
        if self.crashed:
            raise StorageError("simulated crash: file is dead, nothing reaches disk")

    def _next_op_crashes(self) -> bool:
        """Account for one mutating operation; True when it is the one
        that dies (fires at most once per injector)."""
        self._check_alive()
        if self.kill_after_ops is not None and self.mutating_ops >= self.kill_after_ops:
            self.crashed = True
            self.crashed_at = self.mutating_ops
            return True
        self.mutating_ops += 1
        return False

    def opener(self) -> "Callable[[str, str], FaultyFile]":
        """An ``open(path, mode)`` replacement wiring files to this
        injector — pass as the pager's ``opener``.

        Files open unbuffered so that every :meth:`FaultyFile.write`
        reaches the OS immediately: the crash model is a process kill,
        where completed writes survive (they are in the OS page cache)
        and nothing else does.  A userspace buffer would make survival
        depend on flush timing instead of on the injected boundary.
        """

        def _open(path: str, mode: str) -> FaultyFile:
            return FaultyFile(open(path, mode, buffering=0), self)

        return _open


class FaultyFile:
    """File-object proxy routing every operation through the injector.

    Implements the subset of the file protocol the storage engine uses
    (seek/read/write/flush/truncate/close/fileno) plus an explicit
    :meth:`fsync` method — the pager syncs through the file object when
    one is offered, so the injector sees fsyncs too (``os.fsync`` on a
    raw descriptor would bypass it).
    """

    def __init__(self, file, injector: FaultInjector) -> None:
        self._file = file
        self._injector = injector

    # -- non-mutating ---------------------------------------------------

    def seek(self, offset: int, whence: int = os.SEEK_SET) -> int:
        self._injector._check_alive()
        return self._file.seek(offset, whence)

    def tell(self) -> int:
        self._injector._check_alive()
        return self._file.tell()

    def read(self, size: int = -1) -> bytes:
        injector = self._injector
        injector._check_alive()
        limit = injector.short_read_bytes
        if limit is not None and (size < 0 or size > limit):
            size = limit
        return self._file.read(size)

    def fileno(self) -> int:
        return self._file.fileno()

    # -- mutating (kill boundaries) -------------------------------------

    def write(self, data: bytes) -> int:
        injector = self._injector
        if injector._next_op_crashes():
            torn = injector.torn_write_bytes
            if torn is None:
                torn = len(data) // 2
            torn = min(torn, len(data))
            if torn:
                self._file.write(data[:torn])
                self._file.flush()  # the torn prefix is what hit the disk
            raise SimulatedCrash(
                f"killed at op {injector.crashed_at}: torn write "
                f"({torn}/{len(data)} bytes landed)"
            )
        return self._file.write(data)

    def flush(self) -> None:
        injector = self._injector
        if injector._next_op_crashes():
            raise SimulatedCrash(f"killed at op {injector.crashed_at}: flush lost")
        self._file.flush()

    def fsync(self) -> None:
        injector = self._injector
        if injector.fail_fsync:
            injector._check_alive()
            raise OSError(errno.EIO, "injected fsync failure")
        if injector._next_op_crashes():
            raise SimulatedCrash(f"killed at op {injector.crashed_at}: fsync lost")
        os.fsync(self._file.fileno())

    def truncate(self, size: "int | None" = None) -> int:
        injector = self._injector
        if injector._next_op_crashes():
            raise SimulatedCrash(f"killed at op {injector.crashed_at}: truncate lost")
        return self._file.truncate(size)

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        # closing never faults: a dead process's descriptors are closed
        # by the OS without writing anything
        self._file.close()

    @property
    def closed(self) -> bool:
        return self._file.closed

    def __enter__(self) -> "FaultyFile":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
