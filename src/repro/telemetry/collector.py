"""The ambient telemetry collector: hierarchical counters and timers.

Every layer of the engine reports into the *active* collector through the
module-level helpers (:func:`count`, :func:`gauge`, :func:`timer`); when no
collector is active — the default — each helper is a single global load and
``None`` check, so instrumented hot paths stay within noise of the
uninstrumented code.  A collector is activated for the duration of one
query (or one benchmark point) with :func:`collecting`::

    telemetry = Telemetry()
    with collecting(telemetry):
        evaluator.evaluate(query, costs)
    print(telemetry.counters["index.data_postings"])

Counter names are dotted paths (``section.metric``); the first segment
groups related counters into the per-stage sections a
:class:`~repro.telemetry.report.QueryReport` renders.  Collectors nest:
activating a second collector redirects counts to it until its block
exits, which lets a benchmark harness measure one point while an inner
query collects its own report.

Activation is **per thread**: every thread has its own active-collector
slot, so concurrently collecting queries on different threads can never
interleave counts into each other's report.  A :class:`Telemetry` object
itself is *not* thread-safe — one thread fills it, and cross-thread
aggregation goes through :meth:`Telemetry.merge` on the coordinating
thread (the pattern :mod:`repro.concurrent` uses).
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterator
from contextlib import contextmanager

#: the three collection modes of :meth:`repro.core.database.Database.query`
MODE_OFF = "off"
MODE_COUNTERS = "counters"
MODE_TIMINGS = "timings"
MODES = (MODE_OFF, MODE_COUNTERS, MODE_TIMINGS)


class Telemetry:
    """One collection of hierarchical counters and stage timings.

    ``counters`` maps dotted names to accumulated numbers; ``timings``
    maps stage names to accumulated wall seconds.  Timers only run when
    the collector was created with ``timed=True`` (the ``"timings"``
    collection mode) so counter-only collection never calls the clock.
    """

    __slots__ = ("counters", "timings", "timed")

    def __init__(self, timed: bool = False) -> None:
        self.counters: dict[str, float] = {}
        self.timings: dict[str, float] = {}
        self.timed = timed

    def count(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` to the counter ``name``."""
        counters = self.counters
        counters[name] = counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Record ``value`` under ``name``, replacing any previous value
        (for quantities that are levels, not sums — e.g. the final k)."""
        self.counters[name] = value

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` of wall time under stage ``name``."""
        timings = self.timings
        timings[name] = timings.get(name, 0.0) + seconds

    def merge(self, other: "Telemetry") -> None:
        """Fold another collection into this one (counters add, gauges
        overwrite — indistinguishable here, so everything adds; timings
        add)."""
        for name, value in other.counters.items():
            self.count(name, value)
        for name, seconds in other.timings.items():
            self.add_time(name, seconds)

    def sections(self) -> dict[str, dict[str, float]]:
        """Counters grouped by their first dotted segment, insertion
        order preserved within a section."""
        grouped: dict[str, dict[str, float]] = {}
        for name in sorted(self.counters):
            section, _, metric = name.partition(".")
            if not metric:
                section, metric = "misc", name
            grouped.setdefault(section, {})[metric] = self.counters[name]
        return grouped

    def __repr__(self) -> str:
        return (
            f"Telemetry(counters={len(self.counters)}, "
            f"timings={len(self.timings)}, timed={self.timed})"
        )


# ----------------------------------------------------------------------
# ambient activation (thread-local)
# ----------------------------------------------------------------------


class _CollectorState(threading.local):
    """Per-thread activation state.

    The active collector is **thread-local**: a collector activated on
    one thread is invisible to every other thread, so two concurrently
    collecting queries can never interleave counts into each other's
    report.  A worker thread that should report into a query's
    collection activates its own :class:`Telemetry` and the coordinator
    merges it in (see :mod:`repro.concurrent`).
    """

    def __init__(self) -> None:
        self.active: "Telemetry | None" = None
        self.stack: list["Telemetry | None"] = []


_state = _CollectorState()


def current() -> "Telemetry | None":
    """The collector counts currently go to *on this thread*, or ``None``."""
    return _state.active


@contextmanager
def collecting(telemetry: "Telemetry | None") -> Iterator["Telemetry | None"]:
    """Activate ``telemetry`` on the calling thread for the duration of
    the block.

    Passing ``None`` deactivates collection inside the block (used to
    keep a warmup or a shadow evaluation out of an outer collection).
    Activation is thread-local: other threads' collections are unaffected.
    """
    state = _state
    state.stack.append(state.active)
    state.active = telemetry
    try:
        yield telemetry
    finally:
        state.active = state.stack.pop()


def count(name: str, amount: float = 1) -> None:
    """Add to a counter of the active collector; no-op when inactive."""
    telemetry = _state.active
    if telemetry is not None:
        counters = telemetry.counters
        counters[name] = counters.get(name, 0) + amount


def gauge(name: str, value: float) -> None:
    """Set a gauge on the active collector; no-op when inactive."""
    telemetry = _state.active
    if telemetry is not None:
        telemetry.counters[name] = value


class _NullTimer:
    """Shared do-nothing context manager for the inactive/untimed case."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_TIMER = _NullTimer()


class _Timer:
    """Context manager accumulating one stage's wall time."""

    __slots__ = ("_telemetry", "_name", "_start")

    def __init__(self, telemetry: Telemetry, name: str) -> None:
        self._telemetry = telemetry
        self._name = name

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._telemetry.add_time(self._name, time.perf_counter() - self._start)


def timer(name: str):
    """Context manager timing a stage on the active collector.

    Returns a shared no-op manager when no collector is active or the
    active collector is not timed, so wrapping hot stages is free in the
    default configuration.
    """
    telemetry = _state.active
    if telemetry is None or not telemetry.timed:
        return _NULL_TIMER
    return _Timer(telemetry, name)
