"""Engine-wide telemetry: hierarchical counters, timers, query reports.

The subsystem has two halves:

* :mod:`repro.telemetry.collector` — the ambient :class:`Telemetry`
  collector every layer (pager, B+tree, posting codecs, indexes, both
  evaluators) reports into while one is active; activation costs one
  context manager, inactivity costs one ``None`` check per report site.
* :mod:`repro.telemetry.report` — :class:`QueryReport`, the structured
  per-query summary carried by :class:`~repro.core.results.ResultSet`
  and printed by ``repro query --stats``.

The paper's §8 comparison is quantitative — fewer postings touched,
shorter lists — and this module is the instrument panel that lets every
later optimization prove *why* its numbers moved.
"""

from .collector import (
    MODE_COUNTERS,
    MODE_OFF,
    MODE_TIMINGS,
    MODES,
    Telemetry,
    collecting,
    count,
    current,
    gauge,
    timer,
)
from .report import QueryReport

__all__ = [
    "MODES",
    "MODE_COUNTERS",
    "MODE_OFF",
    "MODE_TIMINGS",
    "QueryReport",
    "Telemetry",
    "collecting",
    "count",
    "current",
    "gauge",
    "timer",
]
