"""Structured query reports assembled from a telemetry collection.

A :class:`QueryReport` is what :meth:`repro.core.database.Database.query`
attaches to its :class:`~repro.core.results.ResultSet`: the method the
engine chose, the per-stage counters the evaluation produced, and (in the
``"timings"`` collection mode) per-stage wall times.  It is a plain data
object — renderable for the CLI (:meth:`format`), serializable for
benchmark sidecars (:meth:`to_json`), and queryable by dotted counter
name (:meth:`get`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .collector import Telemetry

#: counters summed into the "postings decoded" headline: every posting
#: entry delivered by any index fetch, data-level or schema-level
POSTING_COUNTERS = (
    "index.data_postings",
    "index.schema_postings",
    "index.sec_postings",
)


@dataclass
class QueryReport:
    """What one query evaluation did, stage by stage.

    ``counters`` and ``timings`` are empty when collection was off; the
    identification fields (method, n, results, wall time) are always
    filled, so ``result_set.report.method`` works in every mode.
    """

    query: str
    method: str
    collect: str
    n: "int | None"
    wall_seconds: float = 0.0
    results: int = 0
    counters: dict[str, float] = field(default_factory=dict)
    timings: dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_telemetry(
        cls,
        telemetry: "Telemetry | None",
        query: str,
        method: str,
        collect: str,
        n: "int | None",
        wall_seconds: float,
        results: int,
    ) -> "QueryReport":
        """Assemble a report from a finished collection (or ``None``)."""
        return cls(
            query=query,
            method=method,
            collect=collect,
            n=n,
            wall_seconds=wall_seconds,
            results=results,
            counters=dict(telemetry.counters) if telemetry is not None else {},
            timings=dict(telemetry.timings) if telemetry is not None else {},
        )

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------

    def get(self, name: str, default: float = 0) -> float:
        """Counter value by dotted name, ``default`` when absent."""
        return self.counters.get(name, default)

    def sections(self) -> dict[str, dict[str, float]]:
        """Counters grouped by their first dotted segment."""
        grouped: dict[str, dict[str, float]] = {}
        for name in sorted(self.counters):
            section, _, metric = name.partition(".")
            if not metric:
                section, metric = "misc", name
            grouped.setdefault(section, {})[metric] = self.counters[name]
        return grouped

    @property
    def pages_read(self) -> int:
        """Storage pages read during the evaluation (0 for in-memory)."""
        return int(self.get("storage.pages_read"))

    @property
    def postings_decoded(self) -> int:
        """Total posting entries delivered by index fetches, across the
        data indexes, the schema indexes, and ``I_sec``."""
        return int(sum(self.get(name) for name in POSTING_COUNTERS))

    @property
    def second_level_queries(self) -> int:
        """Second-level queries executed (0 for the direct method)."""
        return int(self.get("schema.second_level_executed"))

    @property
    def page_cache_hits(self) -> int:
        """Page reads served by the pager's LRU cache instead of the file."""
        return int(self.get("cache.page_hits"))

    @property
    def posting_cache_hits(self) -> int:
        """Index fetches served as already-decoded posting lists."""
        return int(self.get("cache.posting_hits"))

    @property
    def node_cache_hits(self) -> int:
        """B+tree node visits served as already-decoded node images
        (the decoded-node LRU above the pager's page cache)."""
        return int(self.get("btree.node_cache_hits"))

    @property
    def column_cache_hits(self) -> int:
        """Kernel fetches served as already-built columnar lists (the
        ``kernel.*`` family: derived-value caching above the posting
        cache, with the sparse tables lazily grown on the columns)."""
        return int(self.get("kernel.column_cache_hits"))

    @property
    def rmq_builds(self) -> int:
        """Sparse tables built by join/outerjoin range-min lookups."""
        return int(self.get("kernel.rmq_builds"))

    @property
    def rmq_reuses(self) -> int:
        """Range-min lookups answered by an already-built sparse table."""
        return int(self.get("kernel.rmq_reuses"))

    @property
    def wal_frames_written(self) -> int:
        """Write-ahead-log frames appended (0 unless the store mutates
        under ``durability="wal"``)."""
        return int(self.get("wal.frames_written"))

    @property
    def wal_recoveries(self) -> int:
        """Crash recoveries performed (log replays on open)."""
        return int(self.get("wal.recoveries"))

    @property
    def batch_fallback(self) -> bool:
        """True when :meth:`~repro.core.database.Database.query_many`
        served this query serially because the batch mixed insert-cost
        fingerprints (parallelism was requested but not applied)."""
        return bool(self.get("concurrency.batch_fallback"))

    @property
    def compiled_cache_hit(self) -> bool:
        """True when the hot-query compiled cache served this query's
        parsed AST, expanded closure, and plan memo (tier 1)."""
        return bool(self.get("querycache.compiled_hits"))

    @property
    def result_cache_hit(self) -> bool:
        """True when the best-n result cache served this query's answer
        prefix without re-running the driver (tier 2)."""
        return bool(self.get("querycache.result_hits"))

    @property
    def resumed_rounds(self) -> int:
        """Times a shorter cached prefix was extended by resuming the
        incremental driver from its saved round state instead of
        restarting at ``initial_k``."""
        return int(self.get("querycache.resumed_rounds"))

    @property
    def overlay_hits(self) -> int:
        """Index fetches answered from a snapshot overlay — postings a
        concurrent writer overwrote after this reader pinned its
        generation (see :meth:`~repro.core.database.Database.snapshot`)."""
        return int(self.get("mutation.overlay_hits"))

    @property
    def predicted_candidates(self) -> int:
        """The planner's candidate-root estimate for this query (0 when
        the query ran with an explicit method and no estimate was made);
        compare with ``results`` to judge calibration."""
        return int(self.get("planner.predicted_candidates"))

    @property
    def planner_corrections(self) -> int:
        """Session-total gross-misprediction corrections the planner has
        applied so far (see ``docs/PLANNER.md``)."""
        return int(self.get("planner.corrections"))

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------

    def format(self) -> str:
        """Per-stage breakdown for the CLI's ``--stats`` output."""
        n_label = "all" if self.n is None else str(self.n)
        lines = [
            f"telemetry: method={self.method} n={n_label} "
            f"results={self.results} wall={self.wall_seconds * 1000:.1f} ms",
            f"  pages read: {self.pages_read} | "
            f"postings decoded: {self.postings_decoded} | "
            f"second-level queries: {self.second_level_queries}",
            f"  cache hits: {self.page_cache_hits} page / "
            f"{self.node_cache_hits} node / "
            f"{self.posting_cache_hits} posting / "
            f"{self.column_cache_hits} column",
        ]
        if self.wal_frames_written or self.wal_recoveries:
            lines.append(
                f"  wal: {self.wal_frames_written} frame(s) written / "
                f"{self.wal_recoveries} recovery(ies)"
            )
        if self.batch_fallback:
            lines.append(
                "  concurrency: batch fell back to serial execution "
                "(mixed insert-cost fingerprints)"
            )
        if self.compiled_cache_hit or self.result_cache_hit:
            parts = []
            if self.compiled_cache_hit:
                parts.append("compiled query")
            if self.result_cache_hit:
                parts.append("result prefix")
            elif self.resumed_rounds:
                parts.append("resumed driver rounds")
            lines.append("  querycache: served from " + " + ".join(parts))
        if "planner.predicted_candidates" in self.counters:
            calibration = (
                " (corrected)" if self.get("planner.estimate_corrected") else ""
            )
            lines.append(
                f"  planner: predicted ~{self.predicted_candidates} candidate(s) / "
                f"~{int(self.get('planner.predicted_entries'))} posting entries, "
                f"observed {int(self.get('planner.observed_results'))} result(s)"
                f"{calibration}"
            )
        if self.get("shard.fanout"):
            lines.append(
                f"  shard: fanout {int(self.get('shard.fanout'))} | "
                f"merged {int(self.get('shard.results_merged'))} result(s) | "
                f"parallel jobs {int(self.get('shard.parallel_jobs'))}"
            )
        if self.get("server.rejections") or self.get("server.queue_seconds"):
            lines.append(
                f"  server: queued {self.get('server.queue_seconds') * 1000:.1f} ms | "
                f"batch size {int(self.get('server.batch_size'))} | "
                f"queue-full rejections {int(self.get('server.rejections'))}"
            )
        if self.collect == "off":
            lines.append("  (collection off; pass collect='counters' or --stats)")
            return "\n".join(lines)
        for section, metrics in self.sections().items():
            lines.append(f"  {section}:")
            for metric, value in metrics.items():
                rendered = f"{value:g}" if isinstance(value, float) else str(value)
                lines.append(f"    {metric:<28}{rendered:>12}")
        if self.timings:
            lines.append("  timings:")
            for stage, seconds in self.timings.items():
                lines.append(f"    {stage:<28}{seconds * 1000:>9.2f} ms")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """Plain-dict form (the benchmark sidecar schema)."""
        return {
            "query": self.query,
            "method": self.method,
            "collect": self.collect,
            "n": self.n,
            "wall_seconds": self.wall_seconds,
            "results": self.results,
            "summary": {
                "pages_read": self.pages_read,
                "postings_decoded": self.postings_decoded,
                "second_level_queries": self.second_level_queries,
                "page_cache_hits": self.page_cache_hits,
                "node_cache_hits": self.node_cache_hits,
                "posting_cache_hits": self.posting_cache_hits,
                "column_cache_hits": self.column_cache_hits,
                "rmq_builds": self.rmq_builds,
                "rmq_reuses": self.rmq_reuses,
                "wal_frames_written": self.wal_frames_written,
                "wal_recoveries": self.wal_recoveries,
                "batch_fallback": self.batch_fallback,
                "compiled_cache_hit": self.compiled_cache_hit,
                "result_cache_hit": self.result_cache_hit,
                "resumed_rounds": self.resumed_rounds,
                "overlay_hits": self.overlay_hits,
                "predicted_candidates": self.predicted_candidates,
                "planner_corrections": self.planner_corrections,
            },
            "counters": dict(self.counters),
            "timings": dict(self.timings),
        }

    def to_json(self, indent: "int | None" = 2) -> str:
        """JSON rendering of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)
